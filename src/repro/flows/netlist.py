"""Structural netlists elaborated from generated Verilog, and their
cycle simulation.

:func:`elaborate` turns one parsed :class:`~repro.flows.verilog.VerilogModule`
into a :class:`Netlist`: a signal table with widths, the continuous
assignments in dependency (topological) order, and the clocked processes.
:class:`NetlistSimulator` then advances the netlist one clock cycle at a
time with Verilog semantics — continuous assigns settle combinationally,
non-blocking assignments all read pre-edge state and commit together —
which is what lets the pure-Python RTL backend reproduce exactly what an
event-driven simulator would print for this subset.

:func:`lint_module` runs the structural checks the satellite tests pin
for every generated file: legal identifiers and balanced ``begin``/``end``
come free with parsing; on top of that it checks that every referenced
signal is declared *before* use and that no signal has two drivers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flows.numeric import as_signed, truncdiv
from repro.flows.verilog import (
    AlwaysBlock,
    ArrayDecl,
    ContinuousAssign,
    Expr,
    Instance,
    NetDecl,
    VerilogModule,
    VerilogParseError,
    parse_modules,
)

__all__ = [
    "ElaborationError",
    "Netlist",
    "NetlistSimulator",
    "elaborate",
    "lint_module",
    "lint_source",
]


class ElaborationError(ValueError):
    """The module cannot be turned into a simulatable netlist."""


def _isqrt(value: int) -> int:
    import math

    return math.isqrt(max(0, value))


#: functional-unit cores the generator may reference for special opcodes
_FUNCTIONAL_UNITS = {
    "fu_sqrt": _isqrt,
}


# ----------------------------------------------------------------------
# Elaboration
# ----------------------------------------------------------------------


@dataclass
class Netlist:
    """A flattened, simulatable view of one Verilog module."""

    name: str
    #: signal name -> width (ports, wires, regs; integers are 32 wide)
    widths: dict[str, int]
    #: array name -> (element width, size)
    arrays: dict[str, tuple[int, int]]
    #: simulation-only ``integer`` loop variables (not hardware state)
    integers: frozenset[str]
    inputs: list[str]
    outputs: list[str]
    #: continuous assignments in topological evaluation order
    assigns: list[ContinuousAssign]
    processes: list[AlwaysBlock]
    instances: list[Instance]

    def stats(self) -> dict:
        """Cell-level statistics (the ``SynthFlow`` report payload)."""
        assigned = {a.target for a in self.assigns}
        reg_bits = sum(
            width for name, width in self.widths.items()
            if name not in assigned and name not in self.inputs
            and name not in self.integers
        )
        array_bits = sum(width * size for width, size in self.arrays.values())
        return {
            "signals": len(self.widths) - len(self.integers),
            "arrays": len(self.arrays),
            "continuous_assigns": len(self.assigns),
            "processes": len(self.processes),
            "instances": len(self.instances),
            "register_bits": reg_bits,
            "delay_line_bits": array_bits,
        }


def _expr_identifiers(expr: Expr) -> set[str]:
    kind = expr[0]
    if kind == "const":
        return set()
    if kind == "id":
        return {expr[1]}
    if kind in ("index",):
        return {expr[1]} | _expr_identifiers(expr[2])
    if kind == "slice":
        return {expr[1]}
    if kind == "concat":
        out: set[str] = set()
        for part in expr[1]:
            out |= _expr_identifiers(part)
        return out
    if kind in ("unary", "signed"):
        return _expr_identifiers(expr[-1])
    if kind == "binary":
        return _expr_identifiers(expr[2]) | _expr_identifiers(expr[3])
    if kind == "ternary":
        return (_expr_identifiers(expr[1]) | _expr_identifiers(expr[2])
                | _expr_identifiers(expr[3]))
    if kind == "call":
        out = set()
        for part in expr[2]:
            out |= _expr_identifiers(part)
        return out
    raise ElaborationError(f"unknown expression node {kind!r}")  # pragma: no cover


def _toposort_assigns(assigns: list[ContinuousAssign]) -> list[ContinuousAssign]:
    by_target = {a.target: a for a in assigns}
    ordered: list[ContinuousAssign] = []
    state: dict[str, int] = {}  # 0 visiting, 1 done

    def visit(assign: ContinuousAssign) -> None:
        mark = state.get(assign.target)
        if mark == 1:
            return
        if mark == 0:
            raise ElaborationError(
                f"combinational loop through {assign.target!r}")
        state[assign.target] = 0
        for name in _expr_identifiers(assign.expr):
            dep = by_target.get(name)
            if dep is not None:
                visit(dep)
        state[assign.target] = 1
        ordered.append(assign)

    for assign in assigns:
        visit(assign)
    return ordered


def elaborate(module: VerilogModule) -> Netlist:
    """Flatten one module into a simulatable netlist."""
    widths: dict[str, int] = {}
    arrays: dict[str, tuple[int, int]] = {}
    for port in module.ports:
        widths[port.name] = port.width
    for item in module.items:
        if isinstance(item, NetDecl):
            if item.name in widths or item.name in arrays:
                raise ElaborationError(f"signal {item.name!r} declared twice")
            widths[item.name] = item.width
        elif isinstance(item, ArrayDecl):
            if item.name in widths or item.name in arrays:
                raise ElaborationError(f"signal {item.name!r} declared twice")
            arrays[item.name] = (item.width, item.size)

    assigns = _toposort_assigns(module.assigns)
    return Netlist(
        name=module.name,
        widths=widths,
        arrays=arrays,
        integers=frozenset(
            item.name for item in module.items
            if isinstance(item, NetDecl) and item.net_kind == "integer"
        ),
        inputs=[p.name for p in module.inputs()],
        outputs=[p.name for p in module.outputs()],
        assigns=assigns,
        processes=module.always_blocks,
        instances=module.instances,
    )


# ----------------------------------------------------------------------
# Simulation
# ----------------------------------------------------------------------


class NetlistSimulator:
    """Two-phase (combinational settle, then clock edge) cycle simulation.

    Registers and delay lines power up at zero — the deterministic
    counterpart of an event-driven simulator's ``x`` state after the
    generated testbench's reset-and-flush preamble.
    """

    def __init__(self, netlist: Netlist):
        if netlist.instances:
            raise ElaborationError(
                f"module {netlist.name!r} instantiates sub-modules; the "
                "pure-Python backend simulates leaf kernel modules")
        self.netlist = netlist
        self.values: dict[str, int] = {name: 0 for name in netlist.widths}
        self.arrays: dict[str, list[int]] = {
            name: [0] * size for name, (_, size) in netlist.arrays.items()
        }
        self._masks = {name: (1 << w) - 1 for name, w in netlist.widths.items()}
        self._array_masks = {name: (1 << w) - 1
                             for name, (w, _) in netlist.arrays.items()}

    # -- expression evaluation ------------------------------------------
    def _width_of(self, expr: Expr) -> int:
        kind = expr[0]
        if kind == "const":
            return expr[2] or 32
        if kind == "id":
            return self.netlist.widths.get(expr[1], 32)
        if kind == "index":
            name = expr[1]
            if name in self.netlist.arrays:
                return self.netlist.arrays[name][0]
            return 1
        if kind == "slice":
            return expr[2] - expr[3] + 1
        if kind == "concat":
            return sum(self._width_of(part) for part in expr[1])
        if kind in ("unary", "signed"):
            return self._width_of(expr[-1])
        if kind in ("binary", "ternary"):
            return max(self._width_of(expr[-2]), self._width_of(expr[-1]))
        return 32

    def _eval(self, expr: Expr, env: dict[str, int] | None = None) -> int:
        kind = expr[0]
        if kind == "const":
            return expr[1]
        if kind == "id":
            name = expr[1]
            if env is not None and name in env:
                return env[name]
            try:
                return self.values[name]
            except KeyError as exc:
                raise ElaborationError(f"undriven signal {name!r}") from exc
        if kind == "index":
            name = expr[1]
            index = self._eval(expr[2], env)
            if name in self.arrays:
                data = self.arrays[name]
                return data[index] if 0 <= index < len(data) else 0
            value = env[name] if env is not None and name in env else self.values[name]
            return (value >> index) & 1
        if kind == "slice":
            _, name, msb, lsb = expr
            value = env[name] if env is not None and name in env else self.values[name]
            return (value >> lsb) & ((1 << (msb - lsb + 1)) - 1)
        if kind == "concat":
            value = 0
            for part in expr[1]:
                width = self._width_of(part)
                value = (value << width) | (self._eval(part, env) & ((1 << width) - 1))
            return value
        if kind == "signed":
            return self._eval(expr[1], env)
        if kind == "unary":
            op, inner = expr[1], expr[2]
            value = self._eval(inner, env)
            if op == "~":
                width = self._width_of(inner)
                return (~value) & ((1 << width) - 1)
            if op == "-":
                return -value
            return 0 if value else 1  # '!'
        if kind == "binary":
            return self._eval_binary(expr, env)
        if kind == "ternary":
            return (self._eval(expr[2], env) if self._eval(expr[1], env)
                    else self._eval(expr[3], env))
        if kind == "call":
            fn = _FUNCTIONAL_UNITS.get(expr[1])
            if fn is None:
                raise ElaborationError(
                    f"unknown functional unit {expr[1]!r} (supported: "
                    f"{sorted(_FUNCTIONAL_UNITS)})")
            return fn(*[self._eval(a, env) for a in expr[2]])
        raise ElaborationError(f"unknown expression node {kind!r}")  # pragma: no cover

    def _eval_binary(self, expr: Expr, env: dict[str, int] | None) -> int:
        _, op, left, right = expr
        # signedness follows Verilog: a comparison/division/shift is
        # signed only when its operands are $signed
        if op in ("<", "<=", ">", ">=", "/", "%") and (
                left[0] == "signed" or right[0] == "signed"):
            a = as_signed(self._eval(left, env) & ((1 << self._width_of(left)) - 1),
                                self._width_of(left))
            b = as_signed(self._eval(right, env) & ((1 << self._width_of(right)) - 1),
                                self._width_of(right))
        else:
            a = self._eval(left, env)
            b = self._eval(right, env)
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            return truncdiv(a, b)
        if op == "%":
            if b == 0:
                return 0
            return a - b * truncdiv(a, b)
        if op == "&":
            return a & b
        if op == "|":
            return a | b
        if op == "^":
            return a ^ b
        if op == "&&":
            return 1 if (a and b) else 0
        if op == "||":
            return 1 if (a or b) else 0
        if op == "==":
            return 1 if a == b else 0
        if op == "!=":
            return 1 if a != b else 0
        if op == "<":
            return 1 if a < b else 0
        if op == "<=":
            return 1 if a <= b else 0
        if op == ">":
            return 1 if a > b else 0
        if op == ">=":
            return 1 if a >= b else 0
        if op == "<<":
            return a << b
        if op == ">>":
            return a >> b if a >= 0 else (a & ((1 << 64) - 1)) >> b
        if op == ">>>":
            if left[0] == "signed":
                a = as_signed(a & ((1 << self._width_of(left)) - 1),
                                    self._width_of(left))
                return a >> b
            return a >> b
        raise ElaborationError(f"unknown operator {op!r}")  # pragma: no cover

    # -- statement interpretation ---------------------------------------
    def _run_statements(self, statements, env: dict[str, int], nba: list) -> None:
        for stmt in statements:
            kind = stmt[0]
            if kind == "nba":
                target, rhs = stmt[1], stmt[2]
                value = self._eval(rhs, env)
                if target[0] == "id":
                    nba.append((target[1], None, value))
                else:  # ("index", name, index_expr)
                    nba.append((target[1], self._eval(target[2], env), value))
            elif kind == "blocking":
                env[stmt[1]] = self._eval(stmt[2], env)
            elif kind == "if":
                branch = stmt[2] if self._eval(stmt[1], env) else stmt[3]
                self._run_statements(branch, env, nba)
            elif kind == "for":
                init, cond, update, body = stmt[1], stmt[2], stmt[3], stmt[4]
                env[init[1]] = self._eval(init[2], env)
                guard = 0
                while self._eval(cond, env):
                    self._run_statements(body, env, nba)
                    env[update[1]] = self._eval(update[2], env)
                    guard += 1
                    if guard > 1_000_000:  # pragma: no cover - defensive
                        raise ElaborationError("runaway for loop")
            else:  # pragma: no cover - defensive
                raise ElaborationError(f"unknown statement {kind!r}")

    # -- public stepping -------------------------------------------------
    def settle(self) -> None:
        """Propagate the continuous assignments (combinational settle)."""
        for assign in self.netlist.assigns:
            width_mask = self._masks.get(assign.target)
            if width_mask is None:
                raise ElaborationError(f"assignment to undeclared {assign.target!r}")
            self.values[assign.target] = self._eval(assign.expr) & width_mask

    def step(self, inputs: dict[str, int]) -> dict[str, int]:
        """Advance one clock cycle.

        Applies ``inputs``, settles the combinational network, samples
        every output port (the values an observer sees *during* this
        cycle) and then performs the clock edge.  Returns the sampled
        outputs.
        """
        for name, value in inputs.items():
            if name not in self.values:
                raise ElaborationError(f"unknown input {name!r}")
            self.values[name] = value & self._masks[name]
        self.settle()
        sampled = {name: self.values[name] for name in self.netlist.outputs}

        # clock edge: every process evaluates against pre-edge state, all
        # non-blocking assignments commit together
        nba: list[tuple[str, int | None, int]] = []
        for process in self.netlist.processes:
            env: dict[str, int] = {}
            self._run_statements(process.statements, env, nba)
        for name, index, value in nba:
            if index is None:
                self.values[name] = value & self._masks[name]
            else:
                data = self.arrays[name]
                if 0 <= index < len(data):
                    data[index] = value & self._array_masks[name]
        return sampled


# ----------------------------------------------------------------------
# Structural lint
# ----------------------------------------------------------------------


def lint_module(module: VerilogModule) -> list[str]:
    """Structural checks over one parsed module; returns violations.

    Parsing already guarantees legal identifiers and balanced
    ``begin``/``end``; this adds declared-before-use and single-driver
    checks in source order, which is what catches a generator emitting a
    wire below its first consumer.
    """
    problems: list[str] = []
    declared: set[str] = {p.name for p in module.ports}
    drivers: dict[str, int] = {}

    def check_uses(expr: Expr, where: str) -> None:
        for name in sorted(_expr_identifiers(expr)):
            if name not in declared:
                problems.append(f"{module.name}: {where} uses undeclared {name!r}")

    def note_driver(name: str, where: str) -> None:
        drivers[name] = drivers.get(name, 0) + 1
        if drivers[name] == 2:
            problems.append(f"{module.name}: {name!r} has multiple drivers ({where})")

    def scan_statements(statements, where: str, nba_targets: set[str]) -> None:
        for stmt in statements:
            kind = stmt[0]
            if kind == "nba":
                target, rhs = stmt[1], stmt[2]
                check_uses(rhs, where)
                if target[0] == "index":
                    check_uses(stmt[1][2], where)
                nba_targets.add(target[1])
                if target[1] not in declared:
                    problems.append(
                        f"{module.name}: {where} assigns undeclared {target[1]!r}")
            elif kind == "blocking":
                check_uses(stmt[2], where)
            elif kind == "if":
                check_uses(stmt[1], where)
                scan_statements(stmt[2], where, nba_targets)
                scan_statements(stmt[3], where, nba_targets)
            elif kind == "for":
                check_uses(stmt[1][2], where)
                check_uses(stmt[2], where)
                check_uses(stmt[3][2], where)
                scan_statements(stmt[4], where, nba_targets)

    for item in module.items:
        if isinstance(item, NetDecl) or isinstance(item, ArrayDecl):
            if item.name in declared:
                problems.append(f"{module.name}: {item.name!r} declared twice")
            declared.add(item.name)
        elif isinstance(item, ContinuousAssign):
            check_uses(item.expr, f"assign to {item.target!r}")
            if item.target not in declared:
                problems.append(
                    f"{module.name}: assignment to undeclared {item.target!r}")
            note_driver(item.target, "continuous assign")
        elif isinstance(item, AlwaysBlock):
            where = f"always block at line {item.line}"
            targets: set[str] = set()
            scan_statements(item.statements, where, targets)
            # a signal may be assigned several times inside ONE process
            # (reset/else branches); a second *process* or a continuous
            # assign driving it is a race
            for name in sorted(targets):
                note_driver(name, where)
        elif isinstance(item, Instance):
            for port, expr in item.connections:
                check_uses(expr, f"instance {item.name!r} port .{port}")
    return problems


def lint_source(source: str) -> list[str]:
    """Parse and lint Verilog source; parse errors become violations."""
    try:
        modules = parse_modules(source)
    except VerilogParseError as exc:
        return [str(exc)]
    problems: list[str] = []
    for module in modules:
        problems.extend(lint_module(module))
    return problems
