"""Flow orchestration: from generated Verilog back to the cost model.

The estimate → cycle-sim → validate triangle of PRs 1–4 never executed
the HDL the compiler emits; this package closes that loop in the style of
the xeda flow-automation framework — declarative
:class:`~repro.flows.base.Flow`/:class:`~repro.flows.base.SimFlow`/
:class:`~repro.flows.base.SynthFlow` classes with managed run
directories, artifact manifests and content-keyed result caching — on
top of a dependency-free pure-Python RTL backend (parser, structural
netlist, cycle simulator) plus optional iverilog/verilator/yosys
adapters discovered on PATH.
"""

from repro.flows.base import Flow, FlowResult, FlowSettings, SimFlow, SynthFlow
from repro.flows.flows import (
    FLOW_CLASSES,
    ElaborateFlow,
    IcarusSimFlow,
    RTLSimFlow,
    VerilatorLintFlow,
    YosysSynthFlow,
    default_sim_flow,
)
from repro.flows.netlist import (
    ElaborationError,
    Netlist,
    NetlistSimulator,
    elaborate,
    lint_module,
    lint_source,
)
from repro.flows.refmodel import ReferenceResult, kernel_stimulus, reference_outputs
from repro.flows.rtlsim import (
    RTLSimOutcome,
    RTLSimulationError,
    compare_outcome,
    simulate_stream,
)
from repro.flows.suite import (
    DEFAULT_MAX_ITEMS,
    FLOW_SCHEMA,
    FlowReport,
    FlowSuiteRun,
    check_flow_goldens,
    flow_golden_dir,
    kernel_verilog_bundle,
    record_flow_goldens,
    record_verilog_snapshots,
    run_flow_suite,
    run_golden_flows,
    verilog_snapshot_dir,
)
from repro.flows.tools import ToolUnavailableError, available_tools, find_tool
from repro.flows.verilog import (
    VerilogModule,
    VerilogParseError,
    parse_module_text,
    parse_modules,
)

__all__ = [
    # base
    "Flow", "FlowResult", "FlowSettings", "SimFlow", "SynthFlow",
    # concrete flows
    "FLOW_CLASSES", "RTLSimFlow", "ElaborateFlow", "IcarusSimFlow",
    "VerilatorLintFlow", "YosysSynthFlow", "default_sim_flow",
    # RTL backend
    "VerilogModule", "VerilogParseError", "parse_modules", "parse_module_text",
    "ElaborationError", "Netlist", "NetlistSimulator", "elaborate",
    "lint_module", "lint_source",
    "RTLSimOutcome", "RTLSimulationError", "simulate_stream", "compare_outcome",
    # reference model
    "ReferenceResult", "kernel_stimulus", "reference_outputs",
    # suite
    "FLOW_SCHEMA", "DEFAULT_MAX_ITEMS", "FlowReport", "FlowSuiteRun",
    "run_flow_suite", "run_golden_flows", "record_flow_goldens",
    "check_flow_goldens", "flow_golden_dir",
    "verilog_snapshot_dir", "kernel_verilog_bundle", "record_verilog_snapshots",
    # tools
    "ToolUnavailableError", "available_tools", "find_tool",
]
