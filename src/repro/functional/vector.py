"""Sized vectors with order-preserving reshaping.

``Vect`` mirrors the dependently-typed vectors of the paper's Idris
front end: the (nested) size is part of the value's type, and the
``reshape_to`` operation used by the type transformations is explicitly
order- and size-preserving — reshaping a vector of ``im*jm*km`` elements
into ``km`` rows of ``im*jm`` elements keeps every element at the same
linear position.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Vect"]


@dataclass(frozen=True)
class Vect:
    """A vector whose (possibly nested) shape is part of its identity.

    ``shape`` is the logical nesting: ``(n,)`` is a flat vector of ``n``
    elements, ``(rows, cols)`` a vector of ``rows`` vectors of ``cols``
    elements, and so on.  The backing data is always stored flat in row
    major (C) order so that reshaping never reorders elements.
    """

    data: np.ndarray
    shape: tuple[int, ...]

    def __post_init__(self) -> None:
        flat = np.asarray(self.data).reshape(-1)
        object.__setattr__(self, "data", flat)
        if not self.shape:
            raise ValueError("Vect shape cannot be empty")
        if any(dim <= 0 for dim in self.shape):
            raise ValueError(f"Vect dimensions must be positive, got {self.shape}")
        if int(np.prod(self.shape)) != flat.size:
            raise ValueError(
                f"shape {self.shape} does not match {flat.size} elements"
            )

    # -- constructors ------------------------------------------------------
    @staticmethod
    def of(values, shape: tuple[int, ...] | None = None) -> "Vect":
        arr = np.asarray(values)
        return Vect(arr, shape or (arr.size,))

    # -- basic queries -------------------------------------------------------
    @property
    def size(self) -> int:
        """Total number of scalar elements."""
        return int(self.data.size)

    @property
    def outer(self) -> int:
        """Size of the outermost dimension."""
        return self.shape[0]

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def dtype(self):
        return self.data.dtype

    def nested(self) -> np.ndarray:
        """View the data with its logical nesting applied."""
        return self.data.reshape(self.shape)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vect):
            return NotImplemented
        return self.shape == other.shape and bool(np.array_equal(self.data, other.data))

    def __hash__(self) -> int:  # pragma: no cover - rarely used
        return hash((self.shape, self.data.tobytes()))

    # -- the type transformations --------------------------------------------
    def reshape_to(self, outer: int) -> "Vect":
        """``reshapeTo outer`` — split the outermost dimension.

        A flat vector of ``n`` elements becomes ``outer`` rows of
        ``n // outer`` elements; element order is preserved.  Raises when
        ``outer`` does not divide the (outermost) size — the same condition
        the dependent types enforce statically in Idris.
        """
        if outer <= 0:
            raise ValueError("outer size must be positive")
        total = self.size
        if total % outer != 0:
            raise ValueError(
                f"cannot reshape a vector of {total} elements into {outer} equal parts"
            )
        inner = total // outer
        return Vect(self.data, (outer, inner))

    def flatten(self) -> "Vect":
        """Collapse all nesting back into a flat vector (order preserving)."""
        return Vect(self.data, (self.size,))

    def rows(self) -> list["Vect"]:
        """The outermost-dimension slices as flat vectors (the lanes)."""
        if self.ndim == 1:
            return [self]
        inner = self.size // self.outer
        return [
            Vect(self.data[i * inner: (i + 1) * inner], (inner,))
            for i in range(self.outer)
        ]

    def map(self, fn) -> "Vect":
        """Apply an elementwise function (vectorised when possible)."""
        try:
            result = fn(self.data)
            result = np.asarray(result)
            if result.shape != self.data.shape:
                raise ValueError
        except Exception:
            result = np.asarray([fn(x) for x in self.data])
        return Vect(result, self.shape)

    def __len__(self) -> int:
        return self.outer

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"Vect(shape={self.shape}, dtype={self.dtype})"
