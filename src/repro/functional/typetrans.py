"""Type transformations: generating correct-by-construction variants.

The paper's central front-end idea is that reshaping a vector in an order-
and size-preserving way, and inferring the corresponding program, yields a
family of program variants that all compute the same result but imply
different stream arrangements — and therefore different FPGA
configurations.  The baseline::

    ps = map^pipe p_sor pps

becomes, after ``reshapeTo L``::

    ps = map^par (map^pipe p_sor) (reshapeTo L pps)

i.e. ``L`` concurrent pipeline lanes each processing ``N/L`` elements.

This module implements that transformation on :class:`Program` trees,
enumerates the lane counts for which it is valid (divisors of the vector
size), and provides the equivalence check that stands in for the paper's
dependent-type guarantee (and is exercised by property-based tests).
"""

from __future__ import annotations

import numpy as np

from repro.functional.program import Input, Map, Parallelism, Program, Reshape

__all__ = [
    "TransformationError",
    "reshape_transform",
    "enumerate_lane_variants",
    "valid_lane_counts",
    "verify_variant_equivalence",
]


class TransformationError(Exception):
    """Raised when a type transformation cannot be applied."""


def _baseline_parts(program: Program) -> tuple[Map, Input]:
    """Decompose a baseline program into its map and input nodes."""
    root = program.root
    if not isinstance(root, Map) or root.nesting != 1:
        raise TransformationError(
            "reshape_transform expects a baseline program (a single elemental map)"
        )
    child = root.child
    if not isinstance(child, Input):
        raise TransformationError("baseline program must map directly over the input vector")
    return root, child


def reshape_transform(program: Program, lanes: int) -> Program:
    """Apply ``reshapeTo lanes`` and re-decorate the maps (par over pipe)."""
    root, input_node = _baseline_parts(program)
    if lanes <= 0:
        raise TransformationError("lane count must be positive")
    if input_node.size % lanes != 0:
        raise TransformationError(
            f"{lanes} lanes do not evenly divide the vector size {input_node.size}; "
            "the order/size-preserving reshape is not defined"
        )
    if lanes == 1:
        return Program(root=Map(root.kernel, input_node, Parallelism.PIPE, nesting=1),
                       name=f"{root.kernel.name}_l1")
    reshaped = Reshape(input_node, lanes)
    inner = Map(root.kernel, reshaped, Parallelism.PIPE, nesting=2)
    outer = Map(root.kernel, reshaped, Parallelism.PAR, nesting=2)
    # representationally we keep a single nested-map node decorated PAR whose
    # rows are processed by the pipelined elemental map; the inner object is
    # kept for documentation of the (map^pipe) decoration
    outer.child = reshaped
    _ = inner
    return Program(root=outer, name=f"{root.kernel.name}_l{lanes}")


def valid_lane_counts(size: int, max_lanes: int | None = None) -> list[int]:
    """Lane counts for which the reshape transformation is defined."""
    if size <= 0:
        raise TransformationError("vector size must be positive")
    limit = max_lanes or size
    return [lanes for lanes in range(1, min(limit, size) + 1) if size % lanes == 0]


def enumerate_lane_variants(
    program: Program,
    candidate_lanes: list[int] | None = None,
    max_lanes: int | None = None,
) -> dict[int, Program]:
    """Generate the family of lane variants of a baseline program."""
    _, input_node = _baseline_parts(program)
    if candidate_lanes is None:
        candidate_lanes = valid_lane_counts(input_node.size, max_lanes)
    variants: dict[int, Program] = {}
    for lanes in candidate_lanes:
        if input_node.size % lanes != 0:
            continue
        variants[lanes] = reshape_transform(program, lanes)
    if not variants:
        raise TransformationError("no valid lane counts among the candidates")
    return variants


def verify_variant_equivalence(
    baseline: Program,
    variant: Program,
    bindings: dict[str, np.ndarray],
    *,
    rtol: float = 1e-9,
    atol: float = 0.0,
) -> bool:
    """Check that a transformed variant computes the same result.

    This is the dynamic counterpart of the paper's correct-by-construction
    guarantee: both programs are evaluated on the same inputs and every
    output component must match.
    """
    a = baseline.evaluate(bindings)
    b = variant.evaluate(bindings)
    if set(a) != set(b):
        return False
    for key in a:
        lhs, rhs = np.asarray(a[key]), np.asarray(b[key])
        if lhs.shape != rhs.shape:
            return False
        if np.issubdtype(lhs.dtype, np.integer) and np.issubdtype(rhs.dtype, np.integer):
            if not np.array_equal(lhs, rhs):
                return False
        elif not np.allclose(lhs, rhs, rtol=rtol, atol=atol):
            return False
    return True
