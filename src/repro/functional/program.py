"""The functional program DSL: inputs, maps and kernel specifications.

A TyTra design starts life as a functional program such as the paper's
baseline SOR::

    ps = map p_sor pps

where ``pps`` is a vector of tuples (each tuple carrying the pressure
point, its six neighbours, the coefficients and the right-hand side) and
``p_sor`` is the elemental function.  Type transformations then reshape
``pps`` and decorate the maps with parallelism keywords::

    ppst = reshapeTo km pps
    pst  = map^par (map^pipe p_sor) ppst

This module represents such programs as small expression trees over a
named *tuple vector* — a bundle of equally-sized component vectors — and
describes elemental functions with :class:`KernelSpec`, which carries both
their golden NumPy semantics (for correctness checks) and the recipe for
building their streaming datapath in the TyTra-IR (for lowering).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

import numpy as np

from repro.functional.vector import Vect
from repro.ir.types import ScalarType

__all__ = ["Parallelism", "KernelSpec", "Input", "Reshape", "Map", "Program", "TupleValue"]


class Parallelism(str, Enum):
    """The parallelism decoration of a ``map`` (paper §II)."""

    PIPE = "pipe"
    PAR = "par"
    SEQ = "seq"


@dataclass
class KernelSpec:
    """Description of an elemental kernel function.

    Attributes
    ----------
    name:
        Kernel name; becomes the IR function name prefix.
    element_type:
        Stream element type of the generated IR.
    inputs:
        Names of the streamed inputs consumed per work item (one stream
        port each).
    outputs:
        Names of the streamed outputs produced per work item.
    offsets:
        Stream offsets to declare, as ``{input name: [offset, ...]}`` where
        an offset is an int or a symbolic expression over ``constants``.
    constants:
        Module constants referenced by symbolic offsets (e.g. grid sizes).
    golden:
        ``golden(components) -> dict`` — the reference semantics applied
        elementwise to the gathered tuple components (flat NumPy arrays of
        equal length), returning the output components.
    build_datapath:
        ``build_datapath(fb, streams)`` — emit the kernel's SSA body into a
        :class:`repro.ir.builder.FunctionBuilder`; ``streams`` maps logical
        stream names (inputs and declared offsets like ``"p@+1"``) to SSA
        names.
    ops_per_item / bytes_per_item:
        Work characterisation used by the CPU baseline and roofline views.
    """

    name: str
    element_type: ScalarType
    inputs: list[str]
    outputs: list[str]
    golden: Callable[[dict[str, np.ndarray]], dict[str, np.ndarray]]
    build_datapath: Callable[["object", dict[str, str]], None]
    offsets: dict[str, list] = field(default_factory=dict)
    constants: dict[str, int] = field(default_factory=dict)
    ops_per_item: int = 1
    bytes_per_item: int | None = None

    @property
    def words_per_item(self) -> int:
        return len(self.inputs) + len(self.outputs)

    def offset_stream_name(self, source: str, offset) -> str:
        """The logical name of an offset stream (used as a ``streams`` key).

        Integer offsets are rendered with an explicit sign so that
        ``p@+1`` / ``p@-1`` read like the IR's ``!offset`` annotations.
        """
        rendered = f"{offset:+d}" if isinstance(offset, int) else str(offset)
        return f"{source}@{rendered}"

    def apply_golden(self, components: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        missing = [name for name in self.inputs if name not in components]
        if missing:
            raise ValueError(f"kernel {self.name!r}: missing input components {missing}")
        sizes = {np.asarray(components[name]).size for name in self.inputs}
        if len(sizes) != 1:
            raise ValueError(f"kernel {self.name!r}: input components differ in size")
        out = self.golden({k: np.asarray(v).reshape(-1) for k, v in components.items()})
        if set(out) != set(self.outputs):
            raise ValueError(
                f"kernel {self.name!r}: golden returned {sorted(out)}, expected {self.outputs}"
            )
        return out


@dataclass
class TupleValue:
    """A bundle of equally-shaped component vectors (the 'vector of tuples')."""

    components: dict[str, Vect]

    def __post_init__(self) -> None:
        shapes = {v.shape for v in self.components.values()}
        if len(shapes) > 1:
            raise ValueError(f"tuple components have mismatched shapes: {shapes}")
        if not self.components:
            raise ValueError("tuple value needs at least one component")

    @property
    def shape(self) -> tuple[int, ...]:
        return next(iter(self.components.values())).shape

    @property
    def size(self) -> int:
        return next(iter(self.components.values())).size

    def reshape_to(self, outer: int) -> "TupleValue":
        return TupleValue({k: v.reshape_to(outer) for k, v in self.components.items()})

    def rows(self) -> list["TupleValue"]:
        row_lists = {k: v.rows() for k, v in self.components.items()}
        n = len(next(iter(row_lists.values())))
        return [TupleValue({k: rows[i] for k, rows in row_lists.items()}) for i in range(n)]

    def flat(self) -> dict[str, np.ndarray]:
        return {k: v.data for k, v in self.components.items()}


# ----------------------------------------------------------------------
# Expression nodes
# ----------------------------------------------------------------------


@dataclass
class Input:
    """The program's input tuple vector (the NDRange's gathered tuples)."""

    name: str
    size: int

    def evaluate(self, bindings: dict[str, np.ndarray]) -> TupleValue:
        components = {
            key: Vect.of(np.asarray(value).reshape(-1))
            for key, value in bindings.items()
        }
        value = TupleValue(components)
        if value.size != self.size:
            raise ValueError(
                f"input {self.name!r} expects {self.size} elements, got {value.size}"
            )
        return value


@dataclass
class Reshape:
    """``reshapeTo outer`` applied to the child expression."""

    child: "Expression"
    outer: int

    def evaluate(self, bindings: dict[str, np.ndarray]) -> TupleValue:
        return self.child.evaluate(bindings).reshape_to(self.outer)


@dataclass
class Map:
    """``map`` of an elemental kernel (or of an inner map) over the child."""

    kernel: KernelSpec
    child: "Expression"
    parallelism: Parallelism = Parallelism.PIPE
    #: depth of map nesting this node represents (1 = elemental map)
    nesting: int = 1

    def evaluate(self, bindings: dict[str, np.ndarray]) -> TupleValue:
        value = self.child.evaluate(bindings)
        if self.nesting == 1:
            # elemental map over a flat tuple vector
            flat = value.flat()
            out = self.kernel.apply_golden(flat)
            shape = value.shape
            return TupleValue({k: Vect.of(v, shape) for k, v in out.items()})
        # nested map: apply the elemental map to each row independently
        rows = value.rows()
        row_results = []
        for row in rows:
            out = self.kernel.apply_golden(row.flat())
            row_results.append(out)
        merged = {
            key: np.concatenate([np.asarray(r[key]).reshape(-1) for r in row_results])
            for key in self.kernel.outputs
        }
        return TupleValue({k: Vect.of(v, value.shape) for k, v in merged.items()})


Expression = Input | Reshape | Map


@dataclass
class Program:
    """A complete functional program (one top-level expression)."""

    root: Expression
    name: str = "program"

    # -- semantics ---------------------------------------------------------
    def evaluate(self, bindings: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Run the golden semantics and return flat output arrays."""
        result = self.root.evaluate(bindings)
        return {k: v.data for k, v in result.components.items()}

    # -- structural queries ---------------------------------------------------
    def kernel(self) -> KernelSpec:
        node = self.root
        while isinstance(node, (Reshape, Map)):
            if isinstance(node, Map):
                return node.kernel
            node = node.child
        raise ValueError("program contains no map")

    def input(self) -> Input:
        node = self.root
        while not isinstance(node, Input):
            node = node.child
        return node

    def lanes(self) -> int:
        """Parallel lanes implied by the program's par maps and reshapes."""
        node = self.root
        lanes = 1
        while isinstance(node, (Map, Reshape)):
            if isinstance(node, Map) and node.parallelism is Parallelism.PAR:
                child = node.child
                if isinstance(child, Reshape):
                    lanes *= child.outer
            node = node.child
        return lanes

    def parallelism_chain(self) -> list[Parallelism]:
        chain = []
        node = self.root
        while isinstance(node, (Map, Reshape)):
            if isinstance(node, Map):
                chain.append(node.parallelism)
            node = node.child
        return chain

    # -- constructors ------------------------------------------------------
    @staticmethod
    def baseline(kernel: KernelSpec, size: int, name: str | None = None) -> "Program":
        """The baseline program: a single pipelined map over the flat vector."""
        return Program(
            root=Map(kernel, Input("pps", size), Parallelism.PIPE, nesting=1),
            name=name or f"{kernel.name}_baseline",
        )
