"""Lowering functional programs to TyTra-IR design variants.

This is the translation step between the front end of Figure 1 ("apply
type transformations to generate program variants") and the back-end
compiler ("TyTra-IR variant-N"): a :class:`~repro.functional.program.Program`
whose maps are decorated with parallelism keywords becomes a TyTra-IR
module in which

* the elemental kernel's datapath is a ``pipe`` function whose body is
  built by the kernel's :class:`~repro.functional.program.KernelSpec`
  (including its declared stream offsets);
* ``L`` lanes (from a ``map^par`` over a ``reshapeTo L``) become a ``par``
  wrapper calling the pipeline ``L`` times, with per-lane stream objects
  connecting each lane to the memory objects (exactly the structure of the
  paper's Figure 14);
* Manage-IR memory objects are created for every named input/output array.
"""

from __future__ import annotations

from repro.functional.program import KernelSpec, Parallelism, Program
from repro.ir.builder import IRBuilder
from repro.ir.functions import Module

__all__ = ["lower_program"]


def _declare_streams(fb, kernel: KernelSpec) -> dict[str, str]:
    """Declare offsets and return the logical-stream -> SSA-name mapping."""
    streams: dict[str, str] = {name: name for name in kernel.inputs}
    for source, offsets in kernel.offsets.items():
        if source not in kernel.inputs:
            raise ValueError(
                f"kernel {kernel.name!r}: offsets declared on unknown input {source!r}"
            )
        for offset in offsets:
            logical = kernel.offset_stream_name(source, offset)
            suffix = str(offset).replace("-", "n").replace("+", "p").replace("*", "x")
            result = fb.offset(source, offset, kernel.element_type,
                               result=f"{source}_{suffix}")
            streams[logical] = result
    return streams


def lower_program(
    program: Program,
    grid: tuple[int, ...] | None = None,
    name: str | None = None,
) -> Module:
    """Lower a (possibly transformed) program to a TyTra-IR module."""
    kernel = program.kernel()
    input_node = program.input()
    lanes = program.lanes()
    total = input_node.size
    if total % max(lanes, 1) != 0:
        raise ValueError(f"{lanes} lanes do not divide the input size {total}")

    design_name = name or program.name
    builder = IRBuilder(design_name)

    # module constants: kernel constants plus the grid dimensions
    for cname, cvalue in kernel.constants.items():
        builder.constant(cname, cvalue)
    if grid is not None:
        for i, dim in enumerate(grid, start=1):
            builder.constant(f"ND{i}", dim)

    # Manage-IR: one memory object per named array, one stream object per lane
    for array in kernel.inputs:
        builder.memory_object(f"mobj_{array}", kernel.element_type, size=total,
                              addr_space=1, label=array)
    for array in kernel.outputs:
        builder.memory_object(f"mobj_{array}", kernel.element_type, size=total,
                              addr_space=1, label=array)
    for lane in range(lanes):
        for array in kernel.inputs:
            builder.stream_object(f"strobj_{array}{lane}", f"mobj_{array}",
                                  direction="istream")
        for array in kernel.outputs:
            builder.stream_object(f"strobj_{array}{lane}", f"mobj_{array}",
                                  direction="ostream")

    # Compute-IR: the kernel pipeline
    kernel_fn = f"{kernel.name}_pe"
    fb = builder.function(
        kernel_fn, kind="pipe",
        args=[(kernel.element_type, name_) for name_ in kernel.inputs],
    )
    streams = _declare_streams(fb, kernel)
    kernel.build_datapath(fb, streams)

    # port declarations bind the kernel pipeline's streams (lane 0's objects
    # stand for the pattern; each additional lane replicates it)
    for array in kernel.inputs:
        builder.port(kernel_fn, array, kernel.element_type, direction="istream",
                     stream_object=f"strobj_{array}0")
    for array in kernel.outputs:
        builder.port(kernel_fn, array, kernel.element_type, direction="ostream",
                     stream_object=f"strobj_{array}0")

    main = None
    if lanes > 1:
        wrapper = builder.function(
            f"{kernel.name}_lanes", kind="par",
            args=[(kernel.element_type, name_) for name_ in kernel.inputs],
        )
        for _ in range(lanes):
            wrapper.call(kernel_fn, kernel.inputs, kind="pipe")
        main = builder.function("main", kind="none")
        main.call(f"{kernel.name}_lanes", kernel.inputs, kind="par")
    else:
        main = builder.function("main", kind="none")
        main.call(kernel_fn, kernel.inputs, kind="pipe")

    # sanity: the decoration chain must match what we lowered
    chain = program.parallelism_chain()
    if lanes > 1 and Parallelism.PAR not in chain:
        raise ValueError("multi-lane program without a par-decorated map")

    return builder.build()
