"""The functional front end of the TyTra flow (paper §II).

The design entry of the TyTra flow is a pure-software functional program:
vectors with sizes carried in their types, ``map`` applied to an elemental
kernel function, and *type transformations* such as ``reshapeTo`` that
reshape the data in an order- and size-preserving way.  Each reshaped
program corresponds to a different arrangement of streams — and therefore
to a different parallel configuration on the FPGA — while the type system
guarantees the variants are correct by construction.

The paper uses Idris for this layer because the transformations need
dependent types; here the same invariants are enforced dynamically (shape
and order preservation are checked, and the property-based tests verify
that every generated variant evaluates to the same result as the baseline
program).

Modules
-------
``vector``
    Sized vectors (``Vect``) backed by NumPy arrays with order-preserving
    ``reshape_to`` / ``flatten``.
``program``
    The expression DSL: ``Input``, ``Map``, ``Reshape``, ``Program`` and the
    :class:`KernelSpec` describing an elemental function (its golden NumPy
    semantics and how to build its datapath in the IR).
``typetrans``
    The ``reshapeTo`` type transformation, variant enumeration, and the
    correctness checks.
``lower``
    Lowering a (possibly transformed) program to a TyTra-IR module.
"""

from repro.functional.vector import Vect
from repro.functional.program import Input, KernelSpec, Map, Parallelism, Program, Reshape
from repro.functional.typetrans import (
    TransformationError,
    enumerate_lane_variants,
    reshape_transform,
    verify_variant_equivalence,
)
from repro.functional.lower import lower_program

__all__ = [
    "Vect",
    "Parallelism",
    "Input",
    "Map",
    "Reshape",
    "Program",
    "KernelSpec",
    "TransformationError",
    "reshape_transform",
    "enumerate_lane_variants",
    "verify_variant_equivalence",
    "lower_program",
]
