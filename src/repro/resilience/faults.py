"""Deterministic fault injection at named sites.

Chaos testing a deterministic system needs deterministic chaos: a
:class:`FaultPlan` decides, from a seed and a per-site call counter,
exactly which invocations fail — the same plan produces the same fault
schedule in every run, so a test asserting "the report survives 20%
worker death byte-identically" is reproducible, not probabilistic.

Instrumented sites call :func:`maybe_fail` with their site name; the
call is a no-op (one dict lookup) unless a plan is active.  The known
sites:

``cache.read`` / ``cache.write``
    :class:`~repro.cost.cache.DiskCache` entry load / persist.  A read
    fault becomes a cache miss; a write fault simulates a process dying
    between temp-write and atomic rename (the ``.tmp`` orphan the
    eviction sweep must clean up).
``worker``
    One engine batch evaluation — in a pool worker process (where mode
    ``crash`` kills the whole worker via ``os._exit``, the real
    ``BrokenProcessPool`` shape) or in the serial backend (mode
    ``raise``).
``tool``
    One external-tool subprocess invocation (:func:`repro.flows.tools.run_tool`).
``service.handler``
    One service request handler, before it computes — the "leader dies
    mid-request" scenario coalesce promotion recovers from.

Activation is either lexical (``with plan.active():``) or ambient via
``TYBEC_FAULT_PLAN`` — a JSON object (or a path to one), which child
worker processes inherit through the environment:

.. code-block:: json

    {"seed": 7, "sites": {"worker": {"rate": 0.2, "mode": "crash"},
                          "cache.read": {"rate": 0.1}}}
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from repro.resilience.policy import COUNTERS, TransientError, seeded_unit

__all__ = [
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "current_fault_plan",
    "maybe_fail",
]

FAULT_PLAN_ENV = "TYBEC_FAULT_PLAN"


class InjectedFault(TransientError):
    """The failure a fault plan injects at a site (always transient)."""

    def __init__(self, site: str, count: int | None = None):
        where = site if count is None else f"{site} (call #{count})"
        super().__init__(f"injected fault at {where}")
        self.site = site
        self.count = count

    def __reduce__(self):
        # survive the worker->parent pickle boundary with fields intact
        return (InjectedFault, (self.site, self.count))


@dataclass(frozen=True)
class FaultSpec:
    """What one site's failures look like.

    ``rate``
        Probability any given call fails, drawn deterministically from
        ``(seed, site, salt, call_index)``.
    ``indices``
        Explicit 0-based call indices that fail (exact scripting for
        unit tests; combined with ``rate`` by OR).
    ``mode``
        ``raise`` (default) raises :class:`InjectedFault`; ``crash``
        kills the process with ``os._exit`` — only meaningful inside
        pool workers, where it produces a genuine ``BrokenProcessPool``.
    ``max_failures``
        Cap on injections at this site (None = unlimited); lets a test
        script "fail exactly twice, then recover".
    """

    rate: float = 0.0
    indices: tuple[int, ...] = ()
    mode: str = "raise"
    max_failures: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be within [0, 1], got {self.rate}")
        if self.mode not in ("raise", "crash"):
            raise ValueError(f"unknown fault mode {self.mode!r} "
                             "(expected 'raise' or 'crash')")

    @classmethod
    def from_spec(cls, spec: "FaultSpec | dict | float") -> "FaultSpec":
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, (int, float)):
            return cls(rate=float(spec))
        spec = dict(spec)
        if "indices" in spec:
            spec["indices"] = tuple(int(i) for i in spec["indices"])
        return cls(**spec)

    def as_dict(self) -> dict:
        return {"rate": self.rate, "indices": list(self.indices),
                "mode": self.mode, "max_failures": self.max_failures}


class FaultPlan:
    """A seeded schedule of failures across named sites.

    Thread-safe: per-site call counters advance under a lock, so the
    schedule stays deterministic even when the service's handler threads
    hit the same site concurrently (which calls fail then depends on
    arrival order, but the report bytes never do — that is the whole
    point of the recovery layers this harness exercises).
    """

    def __init__(self, sites: dict[str, FaultSpec | dict | float],
                 seed: int = 0):
        self.seed = int(seed)
        self.sites = {name: FaultSpec.from_spec(spec)
                      for name, spec in sites.items()}
        self._lock = threading.Lock()
        self._calls: dict[str, int] = {}
        self._injected: dict[str, int] = {}

    # ------------------------------------------------------------------
    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        payload = json.loads(text)
        if not isinstance(payload, dict) or "sites" not in payload:
            raise ValueError(
                "a fault plan is a JSON object with a 'sites' mapping "
                "(and an optional 'seed')")
        return cls(payload["sites"], seed=payload.get("seed", 0))

    def as_json(self) -> str:
        return json.dumps({
            "seed": self.seed,
            "sites": {name: spec.as_dict()
                      for name, spec in sorted(self.sites.items())},
        }, sort_keys=True)

    # ------------------------------------------------------------------
    def should_fail(self, site: str, salt: int = 0) -> bool:
        """Advance the site's call counter; decide whether this call fails."""
        spec = self.sites.get(site)
        if spec is None:
            return False
        with self._lock:
            index = self._calls.get(site, 0)
            self._calls[site] = index + 1
            injected = self._injected.get(site, 0)
            if spec.max_failures is not None and injected >= spec.max_failures:
                return False
            fail = index in spec.indices or (
                spec.rate > 0.0
                and seeded_unit(self.seed, site, salt, index) < spec.rate)
            if fail:
                self._injected[site] = injected + 1
        return fail

    def fire(self, site: str, salt: int = 0) -> None:
        """Fail this call if the schedule says so (raise or crash)."""
        if not self.should_fail(site, salt):
            return
        COUNTERS.bump("faults.injected")
        COUNTERS.bump(f"faults.{site}")
        spec = self.sites[site]
        if spec.mode == "crash":
            # the real thing, not a simulation: the worker process dies
            # exactly as it would on a segfault or an OOM kill, and the
            # parent sees BrokenProcessPool
            os._exit(13)
        raise InjectedFault(site, self._calls.get(site, 1) - 1)

    def stats(self) -> dict:
        """Per-site call/injection counts (for ``/metrics`` and tests)."""
        with self._lock:
            return {
                "seed": self.seed,
                "sites": {
                    name: {"calls": self._calls.get(name, 0),
                           "injected": self._injected.get(name, 0)}
                    for name in sorted(self.sites)
                },
            }

    # ------------------------------------------------------------------
    @contextmanager
    def active(self):
        """Lexically activate this plan for the current process."""
        global _ACTIVE
        with _ACTIVE_LOCK:
            previous, _ACTIVE = _ACTIVE, self
        try:
            yield self
        finally:
            with _ACTIVE_LOCK:
                _ACTIVE = previous


_ACTIVE: FaultPlan | None = None
_ACTIVE_LOCK = threading.Lock()

#: parsed plans per environment value, so the ambient path costs one
#: dict lookup per call — counters live on the cached instance, which is
#: what keeps an env-activated schedule advancing instead of restarting
#: on every read
_ENV_PLANS: dict[str, FaultPlan] = {}


def _plan_from_env(raw: str) -> FaultPlan | None:
    plan = _ENV_PLANS.get(raw)
    if plan is not None:
        return plan
    text = raw.strip()
    if not text:
        return None
    if not text.lstrip().startswith("{"):
        try:
            text = Path(text).read_text()
        except OSError:
            return None
    try:
        plan = FaultPlan.from_json(text)
    except (ValueError, TypeError):
        return None
    with _ACTIVE_LOCK:
        return _ENV_PLANS.setdefault(raw, plan)


def current_fault_plan() -> FaultPlan | None:
    """The active plan: lexical activation first, then the environment."""
    plan = _ACTIVE
    if plan is not None:
        return plan
    raw = os.environ.get(FAULT_PLAN_ENV)
    if not raw:
        return None
    return _plan_from_env(raw)


def maybe_fail(site: str, salt: int = 0) -> None:
    """Fail here if an active fault plan schedules it; else a no-op."""
    plan = current_fault_plan()
    if plan is not None:
        plan.fire(site, salt)
