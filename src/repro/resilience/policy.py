"""Retry policies, deadlines and transient-error classification.

The exploration system's north star is a fleet of workers, external
tools and long-lived services — substrates that fail *partially*: a
worker process dies, a tool hangs, a connection is refused while a
daemon restarts.  The recovery rules live here, shared by every layer:

:class:`RetryPolicy`
    Bounded attempts with exponential backoff and *deterministic* seeded
    jitter (sha256 of ``(seed, key, attempt)``, never ``random`` — two
    runs of the same chaos test sleep the same schedule).  The policy
    only retries errors classified *transient*; permanent errors (bad
    input, model bugs, expired deadlines) propagate immediately, because
    retrying a deterministic computation cannot change its answer.

:class:`Deadline`
    A monotonic-clock budget propagated through the hot paths: backends
    check it between design points, ``run_tool`` clips subprocess
    timeouts to it, and the service derives one per request.  Crossing
    it raises :class:`DeadlineExceededError` — classified permanent, so
    a retry loop never burns the caller's remaining budget on attempts
    that start already doomed.

:data:`COUNTERS`
    The process-wide resilience counters (retries, requeues, injected
    faults, …) every layer bumps and ``/metrics`` exposes.  Counters are
    observability, not behaviour: nothing canonical (report bytes,
    golden files) may ever depend on them.
"""

from __future__ import annotations

import hashlib
import logging
import math
import time
from dataclasses import dataclass
from typing import Callable, Iterable

import threading

from repro.obs.logs import get_logger, log_event
from repro.obs.metrics import samples_from_counter_snapshot

_LOG = get_logger("resilience")

__all__ = [
    "COUNTERS",
    "Deadline",
    "DeadlineExceededError",
    "PermanentError",
    "ResilienceCounters",
    "RetryBudgetExceededError",
    "RetryPolicy",
    "TransientError",
    "is_transient",
    "register_transient",
    "seeded_unit",
]


class TransientError(RuntimeError):
    """An error worth retrying: the substrate failed, not the request."""


class PermanentError(RuntimeError):
    """An error no retry can fix: the request itself is wrong."""


class DeadlineExceededError(PermanentError):
    """The caller's time budget ran out.

    Permanent by classification: a retry starts with even less budget,
    so the only useful reaction is to report the expiry upward (the
    service turns it into an error event; a promoted coalesce follower
    with a fresher budget may still pick the work up).
    """

    def __init__(self, what: str = "", budget_seconds: float | None = None):
        detail = f" ({what})" if what else ""
        budget = (f" after its {budget_seconds:g}s budget"
                  if budget_seconds is not None else "")
        super().__init__(f"deadline exceeded{budget}{detail}")
        self.what = what
        self.budget_seconds = budget_seconds


class RetryBudgetExceededError(RuntimeError):
    """A retry loop exhausted its attempt budget; carries the last cause."""

    def __init__(self, what: str, attempts: int, last: BaseException):
        super().__init__(
            f"{what} still failing after {attempts} attempt(s): {last}")
        self.attempts = attempts
        self.last = last


#: exception types (beyond :class:`TransientError` subclasses) treated as
#: transient; extended by :func:`register_transient` (the engine adds
#: ``BrokenProcessPool`` lazily so importing this module never drags in
#: :mod:`concurrent.futures`)
_TRANSIENT_TYPES: tuple[type[BaseException], ...] = (
    TransientError,
    ConnectionError,
    TimeoutError,
)


def register_transient(*types: type[BaseException]) -> None:
    """Teach the classifier additional transient exception types."""
    global _TRANSIENT_TYPES
    merged = list(_TRANSIENT_TYPES)
    for tp in types:
        if tp not in merged:
            merged.append(tp)
    _TRANSIENT_TYPES = tuple(merged)


def is_transient(exc: BaseException) -> bool:
    """Whether ``exc`` is worth retrying.

    Permanent classifications win over transient base classes —
    :class:`DeadlineExceededError` stays permanent even though
    retry-worthy errors often wrap timeouts.
    """
    if isinstance(exc, PermanentError):
        return False
    return isinstance(exc, _TRANSIENT_TYPES)


def seeded_unit(*token) -> float:
    """A deterministic uniform draw in ``[0, 1)`` derived from ``token``.

    sha256-based, not ``hash()`` (salted per process) and not ``random``
    (global state): the same token gives the same draw in every process
    of a fleet, which is what makes fault plans and jittered backoff
    schedules reproducible.
    """
    digest = hashlib.sha256(repr(token).encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class Deadline:
    """A monotonic time budget that hot paths check as they go."""

    __slots__ = ("seconds", "_expires_at", "_clock")

    def __init__(self, seconds: float | None,
                 clock: Callable[[], float] = time.monotonic):
        if seconds is not None and seconds <= 0:
            raise ValueError(f"deadline budget must be positive, got {seconds}")
        self.seconds = seconds
        self._clock = clock
        self._expires_at = None if seconds is None else clock() + seconds

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        return cls(seconds)

    @classmethod
    def none(cls) -> "Deadline":
        """The infinite deadline: ``check`` never raises."""
        return cls(None)

    def remaining(self) -> float:
        """Seconds left (``inf`` for the infinite deadline, floored at 0)."""
        if self._expires_at is None:
            return math.inf
        return max(0.0, self._expires_at - self._clock())

    @property
    def expired(self) -> bool:
        return self._expires_at is not None and self._clock() >= self._expires_at

    def check(self, what: str = "") -> None:
        """Raise :class:`DeadlineExceededError` once the budget is spent."""
        if self.expired:
            raise DeadlineExceededError(what, self.seconds)

    def clip(self, timeout: float) -> float:
        """``timeout`` clipped to the remaining budget (for subprocesses)."""
        return min(timeout, self.remaining())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self._expires_at is None:
            return "Deadline(none)"
        return f"Deadline({self.seconds:g}s, {self.remaining():.3f}s left)"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``delay(attempt, key)`` is a pure function of ``(seed, key,
    attempt)``; the ``key`` separates the jitter streams of unrelated
    call sites so a thundering herd of workers retrying the same failure
    spreads out instead of stampeding in lockstep.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    #: +/- fraction of the raw backoff the jitter may shift a delay by
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"a retry policy needs at least one attempt, got "
                f"{self.max_attempts}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be within [0, 1], got {self.jitter}")

    @classmethod
    def none(cls) -> "RetryPolicy":
        """The single-attempt policy: failures propagate immediately."""
        return cls(max_attempts=1)

    # ------------------------------------------------------------------
    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff before retry number ``attempt`` (0-based), jittered."""
        raw = min(self.max_delay, self.base_delay * self.multiplier ** attempt)
        spread = 2.0 * seeded_unit(self.seed, key, attempt) - 1.0
        return max(0.0, raw * (1.0 + self.jitter * spread))

    def attempts(self) -> Iterable[int]:
        return range(self.max_attempts)

    # ------------------------------------------------------------------
    def call(self, fn: Callable[[int], object], *, key: str = "",
             what: str = "operation",
             deadline: Deadline | None = None,
             classify: Callable[[BaseException], bool] = is_transient,
             on_retry: Callable[[int, BaseException], None] | None = None,
             sleep: Callable[[float], None] = time.sleep):
        """Run ``fn(attempt)`` until it returns, the error goes permanent,
        or the budget runs out.

        Transient errors on the last attempt are wrapped in
        :class:`RetryBudgetExceededError` (so callers can distinguish "the
        substrate never recovered" from the first failure); permanent
        errors propagate untouched and uncounted.
        """
        last: BaseException | None = None
        for attempt in self.attempts():
            if deadline is not None:
                deadline.check(what)
            try:
                return fn(attempt)
            except BaseException as exc:  # noqa: BLE001 - reclassified below
                if not classify(exc):
                    raise
                last = exc
                if attempt == self.max_attempts - 1:
                    break
                COUNTERS.bump("retries")
                COUNTERS.bump(f"retries.{key or what}")
                log_event(
                    _LOG,
                    "retry",
                    level=logging.DEBUG,
                    site="retry_policy",
                    key=key or what,
                    cause=f"{type(exc).__name__}: {exc}",
                    attempt=attempt + 1,
                    budget=self.max_attempts,
                )
                if on_retry is not None:
                    on_retry(attempt, exc)
                pause = self.delay(attempt, key)
                if deadline is not None:
                    pause = min(pause, deadline.remaining())
                if pause > 0:
                    sleep(pause)
        assert last is not None
        raise RetryBudgetExceededError(what, self.max_attempts, last) from last


class ResilienceCounters:
    """Thread-safe named counters for the resilience layer.

    One process-wide instance (:data:`COUNTERS`) backs the service's
    ``/metrics`` payload and the chaos tests' assertions.  Deliberately
    dumb: integers under one lock, nothing else, so bumping in a hot
    path costs nanoseconds.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}

    def bump(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + n

    def get(self, name: str) -> int:
        with self._lock:
            return self._counts.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(sorted(self._counts.items()))

    def reset(self) -> None:
        """Zero every counter (test isolation; never called in production)."""
        with self._lock:
            self._counts.clear()

    def metric_samples(self):
        """This surface as registry samples (``tybec_resilience_events_total``).

        The bridge a :class:`~repro.obs.metrics.MetricsRegistry` collector
        registers so Prometheus exposition covers these counters without
        the hot ``bump`` path ever touching the registry.
        """
        return samples_from_counter_snapshot(self.snapshot())


#: the process-wide resilience counters
COUNTERS = ResilienceCounters()
