"""The fault-tolerant execution layer.

Retry policies with deterministic backoff, deadlines propagated through
the hot paths, and a seeded fault-injection harness — the substrate the
engine, flows, cache and service lean on to survive worker death, hung
tools and dying leaders without ever changing a report byte.
"""

from repro.resilience.faults import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    current_fault_plan,
    maybe_fail,
)
from repro.resilience.policy import (
    COUNTERS,
    Deadline,
    DeadlineExceededError,
    PermanentError,
    ResilienceCounters,
    RetryBudgetExceededError,
    RetryPolicy,
    TransientError,
    is_transient,
    register_transient,
    seeded_unit,
)

__all__ = [
    "COUNTERS",
    "Deadline",
    "DeadlineExceededError",
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "PermanentError",
    "ResilienceCounters",
    "RetryBudgetExceededError",
    "RetryPolicy",
    "TransientError",
    "current_fault_plan",
    "is_transient",
    "maybe_fail",
    "register_transient",
    "seeded_unit",
]
