"""Suite-level cross-validation: the golden grid against the simulators.

:func:`validate_suite` fans a :class:`~repro.suite.runner.SuiteConfig`
grid through the exploration engine (serial or process-pool — the
resulting validation reports are byte-identical either way), drives every
costed point through the :class:`~repro.validate.crossval.CrossValidator`
and folds the records into a canonical, version-stamped
:class:`ValidationReport` with the same determinism guarantees as the
suite reports (sorted keys, no wall-clock fields, normalised floats) —
so validation agreement can be pinned by goldens and diffed field by
field exactly like the cost model's own outputs.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.explore.engine import SweepResult
from repro.suite.diff import FieldDiff
from repro.suite.golden import (
    diff_kernel_goldens,
    golden_config,
    write_kernel_goldens,
)
from repro.suite.report import VALIDATION_SCHEMA, SuiteReport
from repro.suite.runner import SuiteConfig, WorkloadSuite
from repro.validate.crossval import (
    DEFAULT_MEMORY_TOLERANCE,
    DEFAULT_TOLERANCE,
    CrossValidator,
    ValidationRecord,
)

__all__ = [
    "VALIDATION_SCHEMA",
    "ValidationReport",
    "ValidationRun",
    "validate_suite",
    "validation_golden_dir",
    "run_golden_validation",
    "record_validation_goldens",
    "check_validation_goldens",
]


class ValidationReport(SuiteReport):
    """A canonical validation report (same shell as a suite report)."""

    @property
    def validation(self) -> dict:
        return self.payload.get("validation", {})

    def kernel_payload(self, name: str) -> dict:
        """The standalone single-kernel payload (for per-kernel goldens)."""
        payload = super().kernel_payload(name)
        payload["validation"] = self.payload["validation"]
        return payload


@dataclass
class ValidationRun:
    """Outcome of one suite-level cross-validation."""

    report: ValidationReport
    records: dict[str, list[ValidationRecord]]
    sweep: SweepResult

    @property
    def points(self) -> int:
        return sum(len(records) for records in self.records.values())

    @property
    def disagreements(self) -> list[ValidationRecord]:
        return [
            record
            for records in self.records.values()
            for record in records
            if not record.ok
        ]

    @property
    def ok(self) -> bool:
        """True when every validated point agrees within tolerance."""
        return not self.disagreements


def _validate_batch(payload) -> list[ValidationRecord]:
    """Worker entry point: validate one contiguous batch of sweep entries.

    Each batch gets a fresh validator; the records are pure functions of
    the entries (the spec re-derivation warm-starts from the persistent
    store when enabled), so parallel and serial validation produce
    byte-identical reports.
    """
    tolerance, memory_tolerance, cycle_accurate, entries = payload
    validator = CrossValidator(
        tolerance=tolerance,
        memory_tolerance=memory_tolerance,
        cycle_accurate=cycle_accurate,
    )
    return [validator.validate_entry(entry) for entry in entries]


def _validate_entries(
    entries: list,
    tolerance: float,
    memory_tolerance: float,
    cycle_accurate: bool,
    jobs: int | None,
) -> list[ValidationRecord]:
    """Validate a flat entry list, optionally over a process pool."""
    if not jobs or jobs <= 1 or len(entries) <= 1:
        return _validate_batch((tolerance, memory_tolerance, cycle_accurate, entries))
    workers = min(jobs, os.cpu_count() or 1, len(entries))
    size = (len(entries) + 2 * workers - 1) // (2 * workers)
    payloads = [
        (tolerance, memory_tolerance, cycle_accurate, entries[start : start + size])
        for start in range(0, len(entries), size)
    ]
    records: list[ValidationRecord] = []
    with ProcessPoolExecutor(max_workers=workers) as executor:
        for batch in executor.map(_validate_batch, payloads):
            records.extend(batch)
    return records


def validate_suite(
    config: SuiteConfig | None = None,
    backend=None,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    memory_tolerance: float = DEFAULT_MEMORY_TOLERANCE,
    cycle_accurate: bool = True,
    jobs: int | None = None,
) -> ValidationRun:
    """Cost a suite grid and cross-validate every point.

    ``backend`` selects the costing backend (serial or process-pool);
    ``jobs`` fans the validation pass itself — the per-point spec
    re-derivation and the pure-Python cycle-stepping simulation, which
    dominate on large grids — over that many worker processes.  Records
    are pure functions of the costed entries, so every combination
    produces byte-identical reports.
    """
    suite = WorkloadSuite(config or SuiteConfig(), backend)
    spaces, sweep = suite.sweep()
    slices = suite.kernel_entries(spaces, sweep)
    flat_records = _validate_entries(
        [entry for entries in slices.values() for entry in entries],
        tolerance, memory_tolerance, cycle_accurate, jobs,
    )

    kernels: dict[str, dict] = {}
    records_by_kernel: dict[str, list[ValidationRecord]] = {}
    max_error = 0.0
    max_gap = 0
    agreeing_total = 0
    cursor = 0
    for name, entries in slices.items():
        records = flat_records[cursor : cursor + len(entries)]
        cursor += len(entries)
        records_by_kernel[name] = records
        workload = suite.config.workload_for(name)
        agreeing = sum(1 for r in records if r.ok)
        agreeing_total += agreeing
        for record in records:
            max_error = max(max_error, record.seconds_relative_error)
            if record.cycle_gap is not None:
                max_gap = max(max_gap, record.cycle_gap)
        kernels[name] = {
            "workload": {"grid": list(workload.grid),
                         "iterations": workload.iterations},
            "points": len(records),
            "agreeing": agreeing,
            "records": [record.as_dict() for record in records],
        }

    points_total = sum(info["points"] for info in kernels.values())
    payload = {
        "schema": VALIDATION_SCHEMA,
        "config": suite.config.as_dict(),
        "validation": {
            "tolerance": tolerance,
            "memory_tolerance": memory_tolerance,
            "cycle_accurate": cycle_accurate,
        },
        "kernels": kernels,
        "totals": {
            "kernels": len(kernels),
            "points": points_total,
            "agreeing": agreeing_total,
            "disagreeing": points_total - agreeing_total,
            "max_seconds_relative_error": max_error,
            "max_cycle_gap": max_gap,
        },
    }
    return ValidationRun(
        report=ValidationReport(payload), records=records_by_kernel, sweep=sweep
    )


# ----------------------------------------------------------------------
# The validation golden harness (mirrors repro.suite.golden)
# ----------------------------------------------------------------------


def validation_golden_dir(root: Path | str | None = None) -> Path:
    """``tests/golden/validation`` under the repo root."""
    if root is not None:
        return Path(root)
    # src/repro/validate/suite.py -> repo root is three parents above src/
    return Path(__file__).resolve().parents[3] / "tests" / "golden" / "validation"


def run_golden_validation(kernels: tuple[str, ...] = ()) -> ValidationReport:
    """Cross-validate the golden suite configuration (default tolerances)."""
    return validate_suite(golden_config(kernels)).report


def record_validation_goldens(directory: Path | str | None = None,
                              kernels: tuple[str, ...] = ()) -> list[Path]:
    """(Re-)write one validation golden per kernel; returns written paths."""
    return write_kernel_goldens(run_golden_validation(kernels),
                                validation_golden_dir(directory))


def check_validation_goldens(directory: Path | str | None = None,
                             kernels: tuple[str, ...] = (),
                             rtol: float = 0.0) -> dict[str, list[FieldDiff]]:
    """Re-run the cross-validation and diff against the recorded goldens."""
    return diff_kernel_goldens(
        run_golden_validation(kernels), validation_golden_dir(directory),
        VALIDATION_SCHEMA,
        "validation golden missing — run `suite record-golden --validation`",
        rtol=rtol)
