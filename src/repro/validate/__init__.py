"""Cross-validation of the analytic cost model against the substrate.

The estimation flow (``repro.compiler`` + ``repro.cost``) and the
cycle-accurate substrate simulators (``repro.substrate``) model the same
hardware from opposite directions; this package is the third leg of the
architecture — estimate / accelerate / **validate** — that drives every
costed design point through both and reports per-point agreement:

``crossval``
    :class:`CrossValidator` — one costed point in, one
    :class:`ValidationRecord` out (estimated vs simulated cycles/seconds,
    relative error, limiting-factor agreement, within-tolerance verdict).
``suite``
    :func:`validate_suite` — fan a whole suite grid through the engine
    and the validator; canonical version-stamped
    :class:`ValidationReport` with its own golden + diff support,
    surfaced as ``tybec suite validate`` on the CLI and gated in CI.
"""

from repro.validate.crossval import (
    DEFAULT_MEMORY_TOLERANCE,
    DEFAULT_TOLERANCE,
    CrossValidator,
    LegComparison,
    ValidationRecord,
)
from repro.validate.suite import (
    VALIDATION_SCHEMA,
    ValidationReport,
    ValidationRun,
    check_validation_goldens,
    record_validation_goldens,
    run_golden_validation,
    validate_suite,
    validation_golden_dir,
)

__all__ = [
    "DEFAULT_TOLERANCE",
    "DEFAULT_MEMORY_TOLERANCE",
    "CrossValidator",
    "LegComparison",
    "ValidationRecord",
    "VALIDATION_SCHEMA",
    "ValidationReport",
    "ValidationRun",
    "validate_suite",
    "validation_golden_dir",
    "run_golden_validation",
    "record_validation_goldens",
    "check_validation_goldens",
]
