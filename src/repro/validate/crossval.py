"""Per-point cross-validation of the analytic cost model.

The paper's credibility rests on validating the throughput estimates
against measured cycles-per-kernel-instance (Table II) and sustained
bandwidth (Figure 10).  The substrate simulators were built for exactly
that role; this module finally wires them in: a :class:`CrossValidator`
takes a costed design point, reconstructs its
:class:`~repro.substrate.pipeline_sim.PipelineSpec` through the very same
``pipeline_spec_from_schedule`` path the estimation pipeline uses, drives
the :class:`~repro.substrate.pipeline_sim.PipelineSimulator` in analytic
*and* cycle-stepping mode (plus the
:class:`~repro.substrate.memory_sim.MemorySystemSimulator` for the
memory-bound legs) and emits a :class:`ValidationRecord` of the
agreement.

What is compared
----------------
* **Device seconds/cycles** — the EKIT breakdown's device-side legs
  (offset fill + pipeline fill + max(DRAM streaming, compute)) against
  the pipeline simulator's cycle count at the same sustained DRAM rate
  (unconstrained steady state for form C, whose data lives on chip; the
  offset priming is charged at the sustained DRAM rate in every form,
  mirroring the EKIT expressions).  Gated by ``tolerance`` (relative).
* **Analytic vs cycle-stepping simulation** — the two simulator modes
  must agree within one pipeline depth per kernel instance (the
  simulator's documented invariant).
* **Limiting factor** — the estimate's steady-state verdict (DRAM
  streaming vs compute) against the simulator's ``limited_by``.
* **Memory legs** — the fitted sustained-bandwidth legs (host DMA and,
  for forms A/B, DRAM streaming) against the transaction-level memory
  simulator they were fitted from.  Gated by ``memory_tolerance``
  (relative, looser: this checks the calibration fit's interpolation
  residual, not a closed-form identity).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.compiler.pipeline import EstimationPipeline
from repro.cost.report import CostReport
from repro.cost.throughput import EKITEstimate
from repro.explore.space import DesignPoint
from repro.models.memory_execution import MemoryExecutionForm
from repro.models.streaming import AccessPattern, PatternKind
from repro.substrate.pipeline_sim import (
    PipelineSimulator,
    SimulationDivergedError,
    SimulationResult,
)

__all__ = [
    "DEFAULT_TOLERANCE",
    "DEFAULT_MEMORY_TOLERANCE",
    "LegComparison",
    "ValidationRecord",
    "CrossValidator",
]

#: default relative tolerance on the device-side seconds agreement
DEFAULT_TOLERANCE = 0.05

#: default relative tolerance on the memory-leg (fit-vs-simulator) agreement.
#: The sustained-bandwidth models are sparse log-size interpolations; in the
#: DMA-setup-dominated decade below ~64KB the host table's residual against
#: the transaction-level simulator reaches ~40%.  This gate exists to catch
#: order-of-magnitude breakage (wrong link constants, out-of-domain
#: extrapolation), not to polish the fit.
DEFAULT_MEMORY_TOLERANCE = 0.5


def _relative_error(estimated: float, simulated: float) -> float:
    if simulated == 0.0:
        return 0.0 if estimated == 0.0 else math.inf
    return abs(estimated - simulated) / abs(simulated)


@dataclass(frozen=True)
class LegComparison:
    """One estimated-vs-simulated time leg (seconds).

    ``footprint_bytes`` is the workload's own leg size; ``evaluated_bytes``
    is that size clamped into the sampled domain of the fitted bandwidth
    table the estimate reads.  Outside the domain the table is a
    documented clamp, not a fit — comparing there would measure the
    clamp's extrapolation error (which reaches ~10x for sub-4KB host DMA
    transfers, where the setup cost dominates), not the fit's residual.
    """

    name: str
    estimated_s: float
    simulated_s: float
    footprint_bytes: int
    evaluated_bytes: int

    @property
    def relative_error(self) -> float:
        return _relative_error(self.estimated_s, self.simulated_s)

    @property
    def clamped(self) -> bool:
        return self.evaluated_bytes != self.footprint_bytes

    def as_dict(self) -> dict:
        return {
            "estimated_s": self.estimated_s,
            "simulated_s": self.simulated_s,
            "relative_error": self.relative_error,
            "footprint_bytes": self.footprint_bytes,
            "evaluated_bytes": self.evaluated_bytes,
            "clamped": self.clamped,
        }


@dataclass(frozen=True)
class ValidationRecord:
    """The agreement verdict for one costed design point."""

    point: DesignPoint
    form: str
    pipeline_depth: int
    estimated_seconds: float
    estimated_cycles: float
    estimated_limited_by: str
    analytic: SimulationResult
    stepped: SimulationResult | None
    diverged: bool
    legs: tuple[LegComparison, ...]
    tolerance: float
    memory_tolerance: float

    # -- agreement ------------------------------------------------------
    @property
    def seconds_relative_error(self) -> float:
        """Relative error of the estimated vs simulated device seconds."""
        return _relative_error(self.estimated_seconds, self.analytic.seconds)

    @property
    def within_tolerance(self) -> bool:
        return self.seconds_relative_error <= self.tolerance

    @property
    def cycle_gap(self) -> int | None:
        """|analytic - cycle-stepping| cycles (None when stepping is off)."""
        if self.stepped is None:
            return None
        return abs(self.analytic.cycles - self.stepped.cycles)

    @property
    def cycles_within_depth(self) -> bool:
        """The simulator's documented invariant: the two modes agree
        within one pipeline depth per kernel instance."""
        if self.diverged:
            return False
        gap = self.cycle_gap
        return True if gap is None else gap <= self.pipeline_depth

    @property
    def limiting_factor_match(self) -> bool:
        return self.estimated_limited_by == self.analytic.limited_by

    @property
    def memory_within_tolerance(self) -> bool:
        return all(leg.relative_error <= self.memory_tolerance for leg in self.legs)

    @property
    def ok(self) -> bool:
        """The overall per-point verdict the validation gate enforces."""
        return (
            self.within_tolerance
            and self.cycles_within_depth
            and self.limiting_factor_match
            and self.memory_within_tolerance
        )

    # -- serialisation --------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "point": self.point.as_dict(),
            "form": self.form,
            "estimated": {
                "device_seconds": self.estimated_seconds,
                "device_cycles": self.estimated_cycles,
                "limited_by": self.estimated_limited_by,
            },
            "simulated": {
                "analytic": self.analytic.as_dict(),
                "cycle_accurate": None if self.stepped is None else self.stepped.as_dict(),
                "diverged": self.diverged,
            },
            "memory_legs": {leg.name: leg.as_dict() for leg in self.legs},
            "agreement": {
                "seconds_relative_error": self.seconds_relative_error,
                "tolerance": self.tolerance,
                "within_tolerance": self.within_tolerance,
                "cycle_gap": self.cycle_gap,
                "cycle_gap_limit": self.pipeline_depth,
                "cycles_within_depth": self.cycles_within_depth,
                "limiting_factor_match": self.limiting_factor_match,
                "memory_tolerance": self.memory_tolerance,
                "memory_within_tolerance": self.memory_within_tolerance,
                "ok": self.ok,
            },
        }


class CrossValidator:
    """Drive costed design points through the substrate simulators.

    One validator holds one memoizing estimation pipeline per estimation
    session (mirroring the engine's serial backend), so re-deriving the
    pipeline specs of a whole sweep hits the same family caches the sweep
    itself warmed.
    """

    def __init__(
        self,
        tolerance: float = DEFAULT_TOLERANCE,
        memory_tolerance: float = DEFAULT_MEMORY_TOLERANCE,
        cycle_accurate: bool = True,
    ):
        if tolerance < 0 or memory_tolerance < 0:
            raise ValueError("tolerances must be non-negative")
        self.tolerance = float(tolerance)
        self.memory_tolerance = float(memory_tolerance)
        self.cycle_accurate = bool(cycle_accurate)
        self._pipelines: dict[tuple, EstimationPipeline] = {}
        self._simulator = PipelineSimulator()

    # ------------------------------------------------------------------
    def pipeline_for(self, point: DesignPoint) -> EstimationPipeline:
        """The (shared) estimation pipeline of the point's session."""
        options = point.compilation_options()
        key = options.session_key()
        pipeline = self._pipelines.get(key)
        if pipeline is None:
            pipeline = self._pipelines[key] = EstimationPipeline(options)
        return pipeline

    # ------------------------------------------------------------------
    def validate(self, point: DesignPoint, report: CostReport) -> ValidationRecord:
        """Cross-validate one costed design point against the simulators."""
        pipeline = self.pipeline_for(point)
        variant = pipeline.analyze(point.family_handle())
        spec = variant.pipeline_spec
        estimate = report.throughput
        params = estimate.parameters
        form = estimate.form

        # the EKIT expressions charge the offset priming at the sustained
        # DRAM rate in every form; the steady state streams from DRAM in
        # forms A/B and from on-chip memory (unconstrained) in form C
        fill_gbps = params.sustained_dram_gbps
        memory_gbps = (
            math.inf if form is MemoryExecutionForm.C else params.sustained_dram_gbps
        )

        analytic = self._simulator.run_kernel_instance(
            spec, point.global_size, memory_gbps, fill_memory_gbps=fill_gbps
        )
        stepped = None
        diverged = False
        if self.cycle_accurate:
            try:
                stepped = self._simulator.run_kernel_instance(
                    spec,
                    point.global_size,
                    memory_gbps,
                    fill_memory_gbps=fill_gbps,
                    cycle_accurate=True,
                )
            except SimulationDivergedError:
                diverged = True

        breakdown = estimate.breakdown
        # same predicate on both sides: the steady state is memory limited
        # exactly when the DRAM-streaming leg exceeds the compute leg
        estimated_limited_by = (
            "memory" if breakdown.dram_streaming > breakdown.compute else "compute"
        )

        return ValidationRecord(
            point=point,
            form=form.value,
            pipeline_depth=spec.pipeline_depth,
            estimated_seconds=estimate.device_seconds,
            estimated_cycles=estimate.device_cycles,
            estimated_limited_by=estimated_limited_by,
            analytic=analytic,
            stepped=stepped,
            diverged=diverged,
            legs=self._memory_legs(pipeline, estimate, point),
            tolerance=self.tolerance,
            memory_tolerance=self.memory_tolerance,
        )

    def validate_entry(self, entry) -> ValidationRecord:
        """Validate one :class:`~repro.explore.engine.SweepEntry`."""
        return self.validate(entry.point, entry.report)

    # ------------------------------------------------------------------
    def _memory_legs(
        self, pipeline: EstimationPipeline, estimate: EKITEstimate, point: DesignPoint
    ) -> tuple[LegComparison, ...]:
        """Check the fitted bandwidth legs against the memory simulator.

        Each leg evaluates both the fit and the transaction-level
        simulator at the workload's footprint, clamped into the fit's
        sampled domain (see :class:`LegComparison`).  At the table's
        sample points the fit reproduces the simulator exactly, so the
        residual measured here is the log-size interpolation error.
        """
        calibration = pipeline.calibrate()
        memsim = calibration.memory_simulator
        params = estimate.parameters
        word_bytes = params.word_bytes
        footprint = params.ngs * params.nwpt * word_bytes

        # host DMA leg: one staging transfer of the NDRange data (the
        # per-instance scaling of forms B/C cancels in the relative error)
        host = calibration.host_bandwidth
        _, nbytes = self._clamp_to_table(
            footprint, host.table_for(PatternKind.CONTIGUOUS), word_bytes
        )
        legs = [
            LegComparison(
                "host",
                nbytes / (host.peak_gbps * host.rho(nbytes) * 1e9),
                memsim.host_transfer_time(nbytes),
                footprint_bytes=footprint,
                evaluated_bytes=nbytes,
            )
        ]
        if estimate.form is not MemoryExecutionForm.C:
            dram = calibration.dram_bandwidth
            n_el, nbytes = self._clamp_to_table(
                footprint, dram.table_for(point.pattern), word_bytes
            )
            pattern = self._calibration_pattern(point.pattern, n_el, word_bytes)
            legs.append(
                LegComparison(
                    "dram",
                    nbytes / (dram.peak_gbps * dram.rho(nbytes, point.pattern) * 1e9),
                    memsim.dram_stream_time(n_el, word_bytes, pattern),
                    footprint_bytes=footprint,
                    evaluated_bytes=nbytes,
                )
            )
        return tuple(legs)

    @staticmethod
    def _clamp_to_table(nbytes: int, table, word_bytes: int) -> tuple[int, int]:
        """Clamp a footprint into a bandwidth table's sampled size range.

        Returns ``(n_elements, n_bytes)`` with the byte count realisable
        as a whole number of stream words.
        """
        clamped = min(max(float(nbytes), table.sizes_bytes[0]), table.sizes_bytes[-1])
        n_elements = max(1, round(clamped / word_bytes))
        return n_elements, n_elements * word_bytes

    @staticmethod
    def _calibration_pattern(
        kind: PatternKind, n_elements: int, word_bytes: int
    ) -> AccessPattern:
        """Mirror ``MemorySystemSimulator.stream_benchmark``'s configuration.

        The rho tables were fitted from square-array measurements whose
        stride equals the array side; comparing against any other stride
        would measure the pattern mismatch, not the fit residual.
        """
        if kind is PatternKind.CONTIGUOUS:
            return AccessPattern.contiguous(word_bytes)
        side = max(2, round(math.sqrt(n_elements)))
        if kind is PatternKind.STRIDED:
            return AccessPattern.strided(side, word_bytes)
        return AccessPattern.random(word_bytes, typical_span_elements=n_elements)
