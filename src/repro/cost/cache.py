"""Bounded in-process caches and the persistent warm-start store.

The estimation pipeline's speed rests on never recomputing what a cache
already knows.  Two kinds of cache back that up:

:class:`BoundedCache`
    A thread-safe LRU used for every process-wide memoization layer
    (structural analyses, resource estimates, design families).  Unlike
    the plain dicts it replaces, it is *bounded* — long suite runs across
    many kernels, devices and latency models cannot grow memory without
    limit — and it counts hits/misses/evictions so the pipeline can report
    cache health instead of guessing at it.

:class:`DiskCache`
    A versioned, content-keyed on-disk store for the expensive one-time
    artifacts: per-device calibration (cost database + bandwidth fits) and
    per-family structural analyses.  Entries are pickled under
    ``<root>/v<N>/<namespace>/<sha256>.pkl`` and written with
    write-to-temp + atomic rename, so concurrent writers (e.g. a process
    pool whose workers all miss the same key at once) can never expose a
    torn file; the loser of the race simply overwrites with identical
    content.  Reads treat any undecodable or mismatched entry as a miss.
    Each namespace is LRU-bounded by file count (access refreshes mtime).

The store location is resolved lazily from ``TYBEC_CACHE_DIR`` (default
``~/.cache/tybec``); setting it to an empty string, ``0`` or ``off``
disables persistence entirely.  Capacity is ``TYBEC_DISK_CACHE_CAPACITY``
entries per namespace.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import tempfile
import threading
import warnings
import time
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path

from repro.obs.logs import get_logger, log_event
from repro.obs.trace import span as trace_span
from repro.resilience import COUNTERS, InjectedFault, maybe_fail

_LOG = get_logger("cache")

__all__ = [
    "BoundedCache",
    "DiskCache",
    "default_disk_cache",
    "env_int",
    "env_capacity",
    "redirected_cache_dir",
]

#: bump to invalidate every persisted artifact after an incompatible
#: change to the cost model or the pickled payload layout
SCHEMA_VERSION = 1


def env_int(name: str, default: int) -> int:
    """An integer read from the environment, falling back on garbage."""
    try:
        return int(os.environ.get(name, default))
    except (TypeError, ValueError):
        return default


def env_capacity(name: str, default: int) -> int:
    """A cache capacity read from the environment.

    Capacities must be strictly positive: an eviction scan deletes
    ``occupancy - capacity`` entries, so a zero or negative capacity would
    evict *every* entry — including the one the scan was triggered for.
    Such values fall back to the default with a warning instead of
    silently turning the cache into a shredder.
    """
    value = env_int(name, default)
    if value <= 0:
        warnings.warn(
            f"{name}={value} would evict every cache entry as soon as it is "
            f"written; falling back to the default capacity {default}",
            RuntimeWarning,
            stacklevel=2,
        )
        return default
    return value


class BoundedCache:
    """A small thread-safe LRU cache with hit/miss/eviction counters."""

    def __init__(self, maxsize: int = 256, name: str = ""):
        self.maxsize = max(1, maxsize)
        self.name = name
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key):
        with self._lock:
            if key not in self._data:
                self.misses += 1
                return None
            self.hits += 1
            self._data.move_to_end(key)
            return self._data[key]

    def put(self, key, value) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def info(self) -> dict:
        """Counters and occupancy, for cache-health reporting.

        Read under the lock so a concurrent ``put`` can never produce a
        snapshot whose counters and occupancy disagree with each other.
        """
        with self._lock:
            return {
                "name": self.name,
                "size": len(self._data),
                "capacity": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


class DiskCache:
    """Versioned, content-keyed, atomically-written persistent store."""

    #: puts per namespace between LRU eviction scans (a scan stats every
    #: entry, so it is amortized rather than paid on each write)
    EVICTION_STRIDE = 8

    #: default per-namespace capacity (also the fallback for bad overrides)
    DEFAULT_CAPACITY = 256

    #: decode failures before an entry is quarantined rather than retried.
    #: One torn read can be a transient fs hiccup; an entry that cannot be
    #: unpickled three times is evidence worth keeping off the read path
    #: but on disk (renamed ``.quarantined``) for post-mortem.
    QUARANTINE_AFTER = 3

    #: age (seconds) past which an orphaned ``.tmp`` file — a writer that
    #: died between temp-write and atomic rename — is swept.  Generous
    #: compared to the milliseconds a live writer holds one, so a sweep
    #: can never race a healthy concurrent put.
    ORPHAN_TMP_AGE = 300.0

    def __init__(self, root: Path | str, capacity: int | None = None):
        self.root = Path(root)
        if capacity is None:
            capacity = env_capacity("TYBEC_DISK_CACHE_CAPACITY", self.DEFAULT_CAPACITY)
        elif capacity <= 0:
            warnings.warn(
                f"DiskCache capacity {capacity} would evict every entry as "
                f"soon as it is written; falling back to "
                f"{self.DEFAULT_CAPACITY}",
                RuntimeWarning,
                stacklevel=2,
            )
            capacity = self.DEFAULT_CAPACITY
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.quarantined = 0
        self.orphans_removed = 0
        self._lock = threading.Lock()
        self._put_counts: dict[str, int] = {}
        #: consecutive decode failures per entry path (reset by a put)
        self._decode_failures: dict[str, int] = {}
        if self.version_dir.is_dir():
            try:
                for ns_dir in self.version_dir.iterdir():
                    if ns_dir.is_dir():
                        self._sweep_orphans(ns_dir)
            except OSError:
                pass

    # ------------------------------------------------------------------
    @property
    def version_dir(self) -> Path:
        return self.root / f"v{SCHEMA_VERSION}"

    def _entry_path(self, namespace: str, token) -> Path:
        digest = hashlib.sha256(repr(token).encode()).hexdigest()
        return self.version_dir / namespace / f"{digest}.pkl"

    # ------------------------------------------------------------------
    def get(self, namespace: str, token):
        """Load one entry, or None on miss/corruption/schema mismatch."""
        with trace_span("cache.get", namespace=namespace) as sp:
            value = self._get(namespace, token)
            if sp is not None:
                sp.attrs["outcome"] = "miss" if value is None else "hit"
            return value

    def _get(self, namespace: str, token):
        path = self._entry_path(namespace, token)
        try:
            # before the decode path, so an injected read fault becomes a
            # plain miss and can never strike (or quarantine) a healthy
            # entry the way real corruption does
            maybe_fail("cache.read")
        except InjectedFault:
            with self._lock:
                self.misses += 1
            return None
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            if payload.get("token") != repr(token):
                raise ValueError("key collision or stale entry")
            try:
                # refresh recency for the LRU eviction scan; best-effort —
                # a read-only cache directory must still serve warm starts
                os.utime(path)
            except OSError:
                pass
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
            return None
        except Exception as exc:
            # torn, corrupt or incompatible entry: a miss, and a strike.
            # A single failure may be a transient fs hiccup (the entry is
            # left alone — a concurrent writer is about to replace it
            # anyway); an entry that keeps failing is quarantined so it
            # stops poisoning the read path but survives for post-mortem.
            with self._lock:
                self.misses += 1
                strikes = self._decode_failures.get(str(path), 0) + 1
                self._decode_failures[str(path)] = strikes
            if strikes >= self.QUARANTINE_AFTER:
                try:
                    path.rename(path.with_suffix(".quarantined"))
                    with self._lock:
                        self.quarantined += 1
                        self._decode_failures.pop(str(path), None)
                    COUNTERS.bump("cache.quarantined")
                    log_event(
                        _LOG,
                        "cache.quarantined",
                        level=logging.WARNING,
                        site="cache.get",
                        namespace=namespace,
                        key=path.name,
                        cause=f"{type(exc).__name__}: {exc}",
                        strikes=strikes,
                    )
                except OSError:
                    pass
            return None
        with self._lock:
            self.hits += 1
            self._decode_failures.pop(str(path), None)
        return payload["value"]

    def put(self, namespace: str, token, value) -> None:
        """Persist one entry (atomic rename; failures are non-fatal)."""
        with trace_span("cache.put", namespace=namespace):
            self._put(namespace, token, value)

    def _put(self, namespace: str, token, value) -> None:
        path = self._entry_path(namespace, token)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            keep_orphan = False
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump({"token": repr(token), "value": value}, fh,
                                protocol=pickle.HIGHEST_PROTOCOL)
                try:
                    maybe_fail("cache.write")
                except InjectedFault:
                    # a simulated death between temp-write and rename: the
                    # orphan ``.tmp`` stays behind exactly as a real crash
                    # would leave it, for the eviction sweep to reap
                    keep_orphan = True
                    return
                os.replace(tmp, path)
                with self._lock:
                    self._decode_failures.pop(str(path), None)
            finally:
                if not keep_orphan and os.path.exists(tmp):
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
            # amortize the directory scan: occupancy may overshoot the
            # capacity by at most one stride between scans.  The *first*
            # put of a namespace always scans — the stride counter is
            # per-process, so a fleet of short-lived workers (each writing
            # fewer than EVICTION_STRIDE entries) would otherwise grow the
            # namespace without bound, each process convinced its handful
            # of writes cannot have crossed the threshold
            with self._lock:
                count = self._put_counts.get(namespace, 0) + 1
                self._put_counts[namespace] = count
            if count == 1 or count % self.EVICTION_STRIDE == 0:
                self._evict(path.parent)
        except OSError:
            # a read-only or full cache directory must never break costing
            pass

    @staticmethod
    def _mtime_or_zero(path: Path) -> float:
        """An entry's mtime, or 0.0 when a concurrent eviction removed it.

        Vanished entries sort oldest, so the unlink below is a no-op for
        them instead of an unhandled ``FileNotFoundError`` mid-scan.
        """
        try:
            return path.stat().st_mtime
        except OSError:
            return 0.0

    def _sweep_orphans(self, namespace_dir: Path) -> None:
        """Reap ``.tmp`` files a dead writer left between write and rename.

        Age-gated: a live writer holds its temp file for milliseconds, so
        anything older than :data:`ORPHAN_TMP_AGE` can only be a corpse.
        """
        now = time.time()
        try:
            orphans = [p for p in namespace_dir.iterdir() if p.suffix == ".tmp"]
        except OSError:
            return
        for path in orphans:
            age = now - self._mtime_or_zero(path)
            if age < self.ORPHAN_TMP_AGE:
                continue
            try:
                path.unlink()
                with self._lock:
                    self.orphans_removed += 1
                COUNTERS.bump("cache.orphans_removed")
                log_event(
                    _LOG,
                    "cache.orphan_removed",
                    site="cache.sweep",
                    namespace=namespace_dir.name,
                    key=path.name,
                    cause="stale tmp left by a dead writer",
                    age_seconds=round(age, 3),
                )
            except OSError:
                pass

    def _evict(self, namespace_dir: Path) -> None:
        self._sweep_orphans(namespace_dir)
        try:
            entries = sorted(
                (p for p in namespace_dir.iterdir() if p.suffix == ".pkl"),
                key=self._mtime_or_zero,
            )
        except OSError:
            return
        excess = len(entries) - self.capacity
        for path in entries[:max(0, excess)]:
            try:
                path.unlink()
                with self._lock:
                    self.evictions += 1
            except OSError:
                pass

    # ------------------------------------------------------------------
    def clear(self) -> int:
        """Remove every cached entry (all schema versions); returns count."""
        removed = 0
        if not self.root.exists():
            return 0
        for path in sorted(self.root.rglob("*.pkl"), reverse=True):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        # debris never counts toward `removed` (quarantined evidence,
        # orphaned temp files) but a clear leaves nothing behind
        for pattern in ("*.quarantined", "*.tmp"):
            for path in sorted(self.root.rglob(pattern), reverse=True):
                try:
                    path.unlink()
                except OSError:
                    pass
        for directory in sorted(self.root.rglob("*"), reverse=True):
            if directory.is_dir():
                try:
                    directory.rmdir()
                except OSError:
                    pass
        return removed

    @staticmethod
    def _size_or_zero(path: Path) -> int:
        """An entry's size, or 0 when a concurrent eviction removed it.

        The occupancy scan walks a live directory: any entry listed by
        ``iterdir`` may be unlinked (eviction, ``clear``, another process)
        before ``stat`` reaches it.  A vanished file contributes no bytes;
        it must never turn a read-only stats call into a crash.
        """
        try:
            return path.stat().st_size
        except OSError:
            return 0

    def stats(self) -> dict:
        """On-disk occupancy per namespace plus this process's counters."""
        namespaces: dict[str, dict] = {}
        if self.version_dir.exists():
            try:
                ns_dirs = sorted(self.version_dir.iterdir())
            except OSError:
                ns_dirs = []
            for ns_dir in ns_dirs:
                if not ns_dir.is_dir():
                    continue
                try:
                    listing = list(ns_dir.iterdir())
                except OSError:
                    # the whole namespace vanished mid-scan (clear())
                    continue
                files = [p for p in listing if p.suffix == ".pkl"]
                namespaces[ns_dir.name] = {
                    "entries": len(files),
                    "bytes": sum(self._size_or_zero(p) for p in files),
                    "quarantined": sum(
                        1 for p in listing if p.suffix == ".quarantined"),
                    "orphan_tmp": sum(
                        1 for p in listing if p.suffix == ".tmp"),
                }
        with self._lock:
            hits, misses, evictions = self.hits, self.misses, self.evictions
            quarantined = self.quarantined
            orphans_removed = self.orphans_removed
        return {
            "root": str(self.root),
            "schema_version": SCHEMA_VERSION,
            "capacity_per_namespace": self.capacity,
            "namespaces": namespaces,
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "quarantined": quarantined,
            "orphans_removed": orphans_removed,
        }


# ----------------------------------------------------------------------
# The default store (resolved lazily so tests/CLI can redirect it)
# ----------------------------------------------------------------------

_INSTANCES: dict[str, DiskCache] = {}
_INSTANCES_LOCK = threading.Lock()


def cache_location() -> str | None:
    """The configured cache directory, or None when persistence is off."""
    raw = os.environ.get("TYBEC_CACHE_DIR")
    if raw is None:
        return str(Path.home() / ".cache" / "tybec")
    raw = raw.strip()
    if raw in ("", "0") or raw.lower() == "off":
        return None
    return raw


@contextmanager
def redirected_cache_dir(path):
    """Temporarily point the persistent store at ``path``.

    Used by the test and benchmark harnesses to stay hermetic: nothing
    reads artifacts a previous run persisted under the user's real cache,
    and nothing pollutes it.  Pass ``"off"`` (or ``""``) to disable
    persistence inside the block.
    """
    previous = os.environ.get("TYBEC_CACHE_DIR")
    os.environ["TYBEC_CACHE_DIR"] = str(path)
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("TYBEC_CACHE_DIR", None)
        else:
            os.environ["TYBEC_CACHE_DIR"] = previous


def default_disk_cache() -> DiskCache | None:
    """The process's shared persistent store (None when disabled).

    Resolved from the environment on every call so a test or CLI run can
    redirect (or disable) persistence without re-importing anything; one
    :class:`DiskCache` instance is shared per resolved path so the
    hit/miss counters are process-wide.
    """
    location = cache_location()
    if location is None:
        return None
    with _INSTANCES_LOCK:
        cache = _INSTANCES.get(location)
        if cache is None:
            cache = _INSTANCES[location] = DiskCache(location)
        return cache
