"""The EKIT throughput cost model (paper §V-B, Equations 1-3).

EKIT — Effective Kernel-Instance Throughput — measures how many
kernel-instance executions per second a design variant sustains, where a
kernel instance is the kernel applied to its entire NDRange (see
:mod:`repro.models.execution`).  Measuring at this granularity lets the
model account for memory latencies, access-pattern-dependent bandwidth
and (if applicable) reconfiguration penalties.

The total time of one kernel instance is composed of four elements
(Form A, Equation 1):

1. transferring the NDRange data between host and device DRAM
   (``NGS*NWPT`` words at the sustained host bandwidth ``HPB*rhoH``);
2. filling the offset stream buffers until the first work-item can be
   processed (``Noff`` words at the sustained DRAM bandwidth ``GPB*rhoG``);
3. filling the kernel pipeline (``KPD`` cycles at ``FD``);
4. executing all work-items, limited by whichever of the DRAM bandwidth or
   the device pipeline is slower — the ``max`` term.

Form B divides the host-transfer contribution by ``NKI`` (data staged in
device DRAM once and reused across kernel-instance iterations); Form C
replaces the ``max`` with its compute argument (data resident on chip, so
execution is always compute bound).

Parameter semantics
-------------------
Bandwidths are in GB/s and word counts are converted through
``word_bytes``; the paper's expressions elide the word size because its
bandwidth figures are already per-word.

``NTO`` (cycles per instruction) and ``NI`` (instructions per PE) combine
with ``NWPT`` in the compute term ``NGS*NWPT*NTO*NI / (FD*KNL*DV)``.  For
a fully-pipelined spatial datapath every instruction has its own
functional unit and every stream its own port, so a new work-item is
accepted every cycle: the compiler extracts ``NTO = II / (NI * NWPT)``
where ``II`` is the scheduled initiation interval in cycles per work-item
(1 for ``pipe`` functions), making the compute term collapse to
``NGS*II/(FD*KNL*DV)``.  For sequential (re-use) configurations ``NTO`` is
the real cycles-per-instruction figure and the same expression yields the
time-multiplexed execution time.  :meth:`EKITParameters.for_pipelined_design`
implements this extraction rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.models.memory_execution import MemoryExecutionForm

__all__ = [
    "LimitingFactor",
    "EKITParameters",
    "TimeBreakdown",
    "EKITEstimate",
    "ekit_form_a",
    "ekit_form_b",
    "ekit_form_c",
    "estimate_throughput",
]


class LimitingFactor(str, Enum):
    """The performance-limiting parameter exposed by the cost model."""

    HOST_BANDWIDTH = "host-bandwidth"
    DRAM_BANDWIDTH = "dram-bandwidth"
    COMPUTE = "compute"
    PIPELINE_FILL = "pipeline-fill"
    OFFSET_FILL = "offset-fill"


@dataclass(frozen=True)
class _DerivedScalars:
    """Derived quantities of one parameter record, all ``knl``-invariant."""

    fd_hz: float
    sustained_host_gbps: float
    sustained_dram_gbps: float
    total_stream_bytes: float


@dataclass(frozen=True)
class EKITParameters:
    """The parameters of Table I.

    Attributes
    ----------
    hpb_gbps / rho_h:
        Host-device peak bandwidth and its sustained-bandwidth scaling
        factor (empirical).
    gpb_gbps / rho_g:
        Device-DRAM peak bandwidth and scaling factor.
    ngs:
        Global size of work-items in the NDRange.
    nwpt:
        Words per tuple per work-item.
    nki:
        Number of kernel-instance repetitions.
    noff:
        Maximum offset in a stream (words).
    kpd:
        Kernel pipeline depth (cycles).
    fd_mhz:
        Device operating frequency (MHz).
    nto:
        Cycles per instruction (see module docstring for the pipelined
        extraction rule).
    ni:
        Instructions per processing element.
    knl:
        Number of parallel kernel lanes.
    dv:
        Degree of vectorisation per lane.
    word_bytes:
        Bytes per stream word.
    reconfiguration_s:
        Run-time reconfiguration penalty per kernel instance (C6 designs).
    """

    hpb_gbps: float
    rho_h: float
    gpb_gbps: float
    rho_g: float
    ngs: int
    nwpt: int
    nki: int
    noff: int
    kpd: int
    fd_mhz: float
    nto: float
    ni: int
    knl: int
    dv: int
    word_bytes: int = 4
    reconfiguration_s: float = 0.0

    def __post_init__(self) -> None:
        positive = {
            "hpb_gbps": self.hpb_gbps, "gpb_gbps": self.gpb_gbps, "ngs": self.ngs,
            "nwpt": self.nwpt, "nki": self.nki, "fd_mhz": self.fd_mhz,
            "ni": self.ni, "knl": self.knl, "dv": self.dv, "word_bytes": self.word_bytes,
        }
        for name, value in positive.items():
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        non_negative = {"rho_h": self.rho_h, "rho_g": self.rho_g, "noff": self.noff,
                        "kpd": self.kpd, "nto": self.nto,
                        "reconfiguration_s": self.reconfiguration_s}
        for name, value in non_negative.items():
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")
        if not (0 < self.rho_h <= 1.0) or not (0 < self.rho_g <= 1.0):
            raise ValueError("rho_h and rho_g must be in (0, 1]")

    # -- derived quantities -------------------------------------------------
    @property
    def _derived(self) -> "_DerivedScalars":
        """The lane-invariant derived scalars, computed once per instance.

        Hot sweep loops evaluate the EKIT expressions for thousands of
        lane counts against one parameter record; the bundle is cached on
        the instance (and shared by :meth:`with_lanes` copies, since none
        of its members depend on ``knl``)."""
        cached = self.__dict__.get("_derived_bundle")
        if cached is None:
            cached = _DerivedScalars(
                fd_hz=self.fd_mhz * 1e6,
                sustained_host_gbps=self.hpb_gbps * self.rho_h,
                sustained_dram_gbps=self.gpb_gbps * self.rho_g,
                total_stream_bytes=float(self.ngs) * self.nwpt * self.word_bytes,
            )
            object.__setattr__(self, "_derived_bundle", cached)
        return cached

    @property
    def fd_hz(self) -> float:
        return self._derived.fd_hz

    @property
    def sustained_host_gbps(self) -> float:
        return self._derived.sustained_host_gbps

    @property
    def sustained_dram_gbps(self) -> float:
        return self._derived.sustained_dram_gbps

    @property
    def total_stream_bytes(self) -> float:
        """Bytes moved per kernel instance (``NGS * NWPT`` words)."""
        return self._derived.total_stream_bytes

    def with_lanes(self, knl: int) -> "EKITParameters":
        """A copy of the parameters with a different lane count.

        ``knl`` is the only field a lane sweep varies, so the copy skips
        ``__post_init__`` (every other invariant is untouched) and shares
        the cached derived-scalar bundle — re-validating through
        ``dataclasses.replace`` per point used to dominate dense
        differential runs.
        """
        if knl == self.knl:
            return self
        if knl <= 0:
            raise ValueError(f"knl must be positive, got {knl}")
        clone = object.__new__(EKITParameters)
        state = dict(self.__dict__)
        state["knl"] = knl
        object.__setattr__(clone, "__dict__", state)
        return clone

    # -- extraction helpers ---------------------------------------------------
    @classmethod
    def for_pipelined_design(
        cls,
        *,
        hpb_gbps: float,
        rho_h: float,
        gpb_gbps: float,
        rho_g: float,
        ngs: int,
        nwpt: int,
        nki: int,
        noff: int,
        kpd: int,
        fd_mhz: float,
        ni: int,
        knl: int = 1,
        dv: int = 1,
        initiation_interval: float = 1.0,
        word_bytes: int = 4,
        reconfiguration_s: float = 0.0,
    ) -> "EKITParameters":
        """Build parameters for a ``pipe`` design from its schedule.

        ``initiation_interval`` is the scheduled cycles per work-item per
        lane (1 for a fully pipelined datapath); ``NTO`` is derived from it
        as ``II / (NI * NWPT)`` so that the paper's compute term evaluates
        to the steady-state pipeline time.
        """
        nto = initiation_interval / (ni * nwpt)
        return cls(
            hpb_gbps=hpb_gbps, rho_h=rho_h, gpb_gbps=gpb_gbps, rho_g=rho_g,
            ngs=ngs, nwpt=nwpt, nki=nki, noff=noff, kpd=kpd, fd_mhz=fd_mhz,
            nto=nto, ni=ni, knl=knl, dv=dv, word_bytes=word_bytes,
            reconfiguration_s=reconfiguration_s,
        )


@dataclass(frozen=True)
class TimeBreakdown:
    """Per-kernel-instance time contributions (seconds)."""

    host_transfer: float
    offset_fill: float
    pipeline_fill: float
    dram_streaming: float
    compute: float
    reconfiguration: float = 0.0

    @property
    def streaming_or_compute(self) -> float:
        """The ``max`` term of the EKIT expressions."""
        return max(self.dram_streaming, self.compute)

    @property
    def total(self) -> float:
        return (
            self.host_transfer
            + self.offset_fill
            + self.pipeline_fill
            + self.streaming_or_compute
            + self.reconfiguration
        )

    @property
    def device_total(self) -> float:
        """Device-side seconds: the kernel-instance time without the host
        link or reconfiguration legs — what the pipeline simulator models
        (offset priming, pipeline fill, steady-state streaming/compute)."""
        return self.offset_fill + self.pipeline_fill + self.streaming_or_compute

    def as_dict(self) -> dict:
        return {
            "host_transfer_s": self.host_transfer,
            "offset_fill_s": self.offset_fill,
            "pipeline_fill_s": self.pipeline_fill,
            "dram_streaming_s": self.dram_streaming,
            "compute_s": self.compute,
            "reconfiguration_s": self.reconfiguration,
            "total_s": self.total,
        }


@dataclass(frozen=True)
class EKITEstimate:
    """Result of evaluating one of the EKIT expressions."""

    form: MemoryExecutionForm
    parameters: EKITParameters
    breakdown: TimeBreakdown
    ekit: float
    limiting_factor: LimitingFactor

    @property
    def kernel_instance_time_s(self) -> float:
        return self.breakdown.total

    @property
    def application_time_s(self) -> float:
        """Total time for all ``NKI`` kernel-instance repetitions."""
        return self.parameters.nki / self.ekit if self.ekit > 0 else float("inf")

    @property
    def cycles_per_kernel_instance(self) -> float:
        """CPKI implied by the estimate (device-cycle equivalent)."""
        return self.breakdown.total * self.parameters.fd_hz

    @property
    def device_seconds(self) -> float:
        """The device-side (simulatable) share of the kernel-instance time."""
        return self.breakdown.device_total

    @property
    def device_cycles(self) -> float:
        """Device cycles implied by :attr:`device_seconds` — the quantity
        the cross-validation subsystem checks against the pipeline
        simulator's cycle counts."""
        return self.breakdown.device_total * self.parameters.fd_hz

    @property
    def ewgt(self) -> float:
        """Work-group (kernel-instance) executions per second — Figure 15's axis."""
        return self.ekit

    def as_dict(self) -> dict:
        return {
            "form": self.form.value,
            "ekit_per_s": self.ekit,
            "limiting_factor": self.limiting_factor.value,
            "breakdown": self.breakdown.as_dict(),
        }


# ----------------------------------------------------------------------
# The three expressions
# ----------------------------------------------------------------------


def _breakdown(p: EKITParameters, host_scaling: float) -> TimeBreakdown:
    stream_bytes = p.total_stream_bytes
    host_transfer = stream_bytes / (p.sustained_host_gbps * 1e9) * host_scaling
    offset_fill = (p.noff * p.word_bytes) / (p.sustained_dram_gbps * 1e9)
    pipeline_fill = p.kpd / p.fd_hz
    dram_streaming = stream_bytes / (p.sustained_dram_gbps * 1e9)
    compute = (p.ngs * p.nwpt * p.nto * p.ni) / (p.fd_hz * p.knl * p.dv)
    return TimeBreakdown(
        host_transfer=host_transfer,
        offset_fill=offset_fill,
        pipeline_fill=pipeline_fill,
        dram_streaming=dram_streaming,
        compute=compute,
        reconfiguration=p.reconfiguration_s,
    )


def _limiting_factor(b: TimeBreakdown, compute_bound_only: bool) -> LimitingFactor:
    candidates = {
        LimitingFactor.HOST_BANDWIDTH: b.host_transfer,
        LimitingFactor.OFFSET_FILL: b.offset_fill,
        LimitingFactor.PIPELINE_FILL: b.pipeline_fill,
    }
    if compute_bound_only:
        candidates[LimitingFactor.COMPUTE] = b.compute
    else:
        if b.dram_streaming >= b.compute:
            candidates[LimitingFactor.DRAM_BANDWIDTH] = b.dram_streaming
        else:
            candidates[LimitingFactor.COMPUTE] = b.compute
    return max(candidates, key=candidates.get)


def ekit_form_a(p: EKITParameters) -> EKITEstimate:
    """Equation 1: host transfer paid on every kernel instance."""
    breakdown = _breakdown(p, host_scaling=1.0)
    return EKITEstimate(
        form=MemoryExecutionForm.A,
        parameters=p,
        breakdown=breakdown,
        ekit=1.0 / breakdown.total,
        limiting_factor=_limiting_factor(breakdown, compute_bound_only=False),
    )


def ekit_form_b(p: EKITParameters) -> EKITEstimate:
    """Equation 2: host transfer amortised over the ``NKI`` repetitions."""
    breakdown = _breakdown(p, host_scaling=1.0 / p.nki)
    return EKITEstimate(
        form=MemoryExecutionForm.B,
        parameters=p,
        breakdown=breakdown,
        ekit=1.0 / breakdown.total,
        limiting_factor=_limiting_factor(breakdown, compute_bound_only=False),
    )


def ekit_form_c(p: EKITParameters) -> EKITEstimate:
    """Equation 3: on-chip data; always compute bound (no DRAM max term)."""
    base = _breakdown(p, host_scaling=1.0 / p.nki)
    breakdown = TimeBreakdown(
        host_transfer=base.host_transfer,
        offset_fill=base.offset_fill,
        pipeline_fill=base.pipeline_fill,
        dram_streaming=0.0,
        compute=base.compute,
        reconfiguration=base.reconfiguration,
    )
    return EKITEstimate(
        form=MemoryExecutionForm.C,
        parameters=p,
        breakdown=breakdown,
        ekit=1.0 / breakdown.total,
        limiting_factor=_limiting_factor(breakdown, compute_bound_only=True),
    )


_FORM_DISPATCH = {
    MemoryExecutionForm.A: ekit_form_a,
    MemoryExecutionForm.B: ekit_form_b,
    MemoryExecutionForm.C: ekit_form_c,
}


def estimate_throughput(
    parameters: EKITParameters, form: MemoryExecutionForm | str = MemoryExecutionForm.B
) -> EKITEstimate:
    """Evaluate the EKIT expression appropriate to the memory-execution form."""
    form = MemoryExecutionForm(form)
    return _FORM_DISPATCH[form](parameters)
