"""Sustained stream-bandwidth model (paper §V-C, Figure 10).

While peak bandwidths can be read off datasheets, the bandwidth a stream
actually sustains depends strongly on the access pattern and the transfer
size — contiguity alone changes it by up to two orders of magnitude.  The
paper therefore builds an *empirical* model from a STREAM-style benchmark
run once per target, and incorporates it into the compiler.

This module provides that model:

* :class:`BandwidthTable` — sustained GB/s as a function of total transfer
  size, interpolated (in log-size space) between measured points;
* :class:`SustainedBandwidthModel` — one table per access-pattern class
  plus the peak figure, from which the ``rho`` scaling factors used in the
  EKIT expressions are derived (``rho = sustained / peak``).

Constructors are provided for (a) ingesting measurements from the memory
simulator (the reproduction's stand-in for running the benchmark on the
board), and (b) the paper's own Figure-10 numbers, used as a documented
fallback and in the ablation experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.models.streaming import AccessPattern, PatternKind
from repro.substrate.memory_sim import MemorySystemSimulator, StreamMeasurement

__all__ = ["BandwidthTable", "SustainedBandwidthModel"]


@dataclass
class BandwidthTable:
    """Sustained bandwidth (GB/s) as a function of transfer size (bytes)."""

    sizes_bytes: list[float]
    gbps: list[float]

    def __post_init__(self) -> None:
        if len(self.sizes_bytes) != len(self.gbps) or not self.sizes_bytes:
            raise ValueError("bandwidth table needs matching, non-empty size/bandwidth lists")
        order = np.argsort(self.sizes_bytes)
        self.sizes_bytes = [float(self.sizes_bytes[i]) for i in order]
        self.gbps = [float(self.gbps[i]) for i in order]
        if any(s <= 0 for s in self.sizes_bytes) or any(b <= 0 for b in self.gbps):
            raise ValueError("sizes and bandwidths must be positive")

    def sustained(self, nbytes: float) -> float:
        """Interpolate sustained bandwidth at ``nbytes`` (clamped at the ends)."""
        if nbytes <= 0:
            return self.gbps[0]
        if len(self.sizes_bytes) == 1:
            return self.gbps[0]
        log_sizes = np.log10(self.sizes_bytes)
        return float(np.interp(np.log10(nbytes), log_sizes, self.gbps))

    @property
    def plateau_gbps(self) -> float:
        """The large-transfer plateau (the last table entry)."""
        return self.gbps[-1]

    def as_dict(self) -> dict:
        return {"sizes_bytes": self.sizes_bytes, "gbps": self.gbps}

    @staticmethod
    def from_dict(data: dict) -> "BandwidthTable":
        return BandwidthTable(list(data["sizes_bytes"]), list(data["gbps"]))


@dataclass
class SustainedBandwidthModel:
    """Empirical sustained-bandwidth model for one memory interface."""

    peak_gbps: float
    contiguous: BandwidthTable
    strided: BandwidthTable
    name: str = "device-dram"
    #: measurements the model was fitted from (if any), kept for reports
    measurements: list[StreamMeasurement] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.peak_gbps <= 0:
            raise ValueError("peak bandwidth must be positive")

    # ------------------------------------------------------------------
    def table_for(self, pattern: AccessPattern | PatternKind) -> BandwidthTable:
        kind = pattern.kind if isinstance(pattern, AccessPattern) else PatternKind(pattern)
        return self.contiguous if kind is PatternKind.CONTIGUOUS else self.strided

    def sustained_gbps(
        self, nbytes: float, pattern: AccessPattern | PatternKind = PatternKind.CONTIGUOUS
    ) -> float:
        return self.table_for(pattern).sustained(nbytes)

    def rho(
        self, nbytes: float, pattern: AccessPattern | PatternKind = PatternKind.CONTIGUOUS
    ) -> float:
        """The scaling factor applied to the peak bandwidth in the EKIT model.

        Memoized per (size, pattern class): a sweep evaluates thousands of
        points over a handful of distinct footprints, and the log-space
        interpolation behind :meth:`sustained_gbps` is pure function of
        both arguments.  The cached value is the verbatim result of the
        same computation, so memoization cannot change any report.
        """
        kind = pattern.kind if isinstance(pattern, AccessPattern) else PatternKind(pattern)
        cache = self.__dict__.setdefault("_rho_cache", {})
        key = (nbytes, kind)
        value = cache.get(key)
        if value is None:
            if len(cache) > 4096:
                cache.clear()
            value = min(1.0, self.sustained_gbps(nbytes, kind) / self.peak_gbps)
            cache[key] = value
        return value

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "peak_gbps": self.peak_gbps,
            "contiguous": self.contiguous.as_dict(),
            "strided": self.strided.as_dict(),
        }

    @staticmethod
    def from_dict(data: dict) -> "SustainedBandwidthModel":
        return SustainedBandwidthModel(
            peak_gbps=float(data["peak_gbps"]),
            contiguous=BandwidthTable.from_dict(data["contiguous"]),
            strided=BandwidthTable.from_dict(data["strided"]),
            name=data.get("name", "device-dram"),
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_measurements(
        cls,
        measurements: list[StreamMeasurement],
        peak_gbps: float,
        name: str = "device-dram",
    ) -> "SustainedBandwidthModel":
        """Fit the model from benchmark measurements (Figure 2's one-time input)."""
        contiguous = [(m.total_bytes, m.sustained_gbps) for m in measurements
                      if m.pattern is PatternKind.CONTIGUOUS]
        non_contiguous = [(m.total_bytes, m.sustained_gbps) for m in measurements
                          if m.pattern is not PatternKind.CONTIGUOUS]
        if not contiguous:
            raise ValueError("need at least one contiguous measurement")
        if not non_contiguous:
            # paper: strided and random sustain essentially the same low
            # bandwidth; without measurements assume a pessimistic 1/50th
            non_contiguous = [(size, gbps / 50.0) for size, gbps in contiguous]
        return cls(
            peak_gbps=peak_gbps,
            contiguous=BandwidthTable(*map(list, zip(*contiguous))),
            strided=BandwidthTable(*map(list, zip(*non_contiguous))),
            name=name,
            measurements=list(measurements),
        )

    @classmethod
    def from_simulator(
        cls,
        simulator: MemorySystemSimulator,
        sides: tuple[int, ...] = MemorySystemSimulator.DEFAULT_SIDES,
        element_bytes: int = 4,
        name: str = "device-dram",
    ) -> "SustainedBandwidthModel":
        """Run the STREAM suite on the memory simulator and fit the model."""
        measurements = simulator.run_stream_suite(sides=sides, element_bytes=element_bytes)
        return cls.from_measurements(
            measurements, peak_gbps=simulator.dram.peak_gbps, name=name
        )

    #: The measured points of the paper's Figure 10 (Alpha-Data ADM-PCIE-7V3,
    #: Virtex-7, SDAccel, no vendor-recommended optimisations).  The x values
    #: are sides of a square array of 4-byte elements; the contiguous series
    #: rises to a ~6.3 GB/s plateau around 1000x1000 elements and the strided
    #: series stays around 0.04-0.07 GB/s.
    PAPER_FIG10_SIDES = (100, 500, 750, 1000, 1500, 2000, 2500, 3000, 3500, 4000, 5000, 6000)
    PAPER_FIG10_CONTIGUOUS_GBPS = (0.3, 1.2, 1.7, 2.4, 4.1, 5.2, 5.6, 5.8, 6.1, 6.2, 6.2, 6.3)
    PAPER_FIG10_STRIDED_GBPS = (0.04, 0.07, 0.07, 0.07, 0.07, 0.07, 0.07, 0.07, 0.07, 0.07, 0.07, 0.07)

    @classmethod
    def paper_figure10(cls, element_bytes: int = 4, peak_gbps: float = 9.6) -> "SustainedBandwidthModel":
        """The empirical model built directly from the paper's reported points."""
        sizes = [s * s * element_bytes for s in cls.PAPER_FIG10_SIDES]
        return cls(
            peak_gbps=peak_gbps,
            contiguous=BandwidthTable(sizes, list(cls.PAPER_FIG10_CONTIGUOUS_GBPS)),
            strided=BandwidthTable(sizes, list(cls.PAPER_FIG10_STRIDED_GBPS)),
            name="paper-figure-10",
        )

    @classmethod
    def host_from_simulator(
        cls,
        simulator: MemorySystemSimulator,
        sizes_bytes: tuple[int, ...] = (1 << 12, 1 << 16, 1 << 20, 1 << 24, 1 << 27, 1 << 30),
        name: str = "host-pcie",
    ) -> "SustainedBandwidthModel":
        """Fit the host-link (PCIe) sustained-bandwidth model (``rho_H``).

        Host DMA transfers are contiguous by construction (the runtime
        packs buffers), so the strided table simply mirrors the contiguous
        one; the size dependence (DMA setup amortisation) is what matters.
        """
        points = [(float(n), simulator.host_sustained_gbps(n)) for n in sizes_bytes]
        table = BandwidthTable([p[0] for p in points], [p[1] for p in points])
        return cls(
            peak_gbps=simulator.pcie.raw_gbps,
            contiguous=table,
            strided=table,
            name=name,
        )

    @classmethod
    def flat(cls, peak_gbps: float, efficiency: float = 1.0, name: str = "flat") -> "SustainedBandwidthModel":
        """A degenerate model with no size/pattern dependence.

        Used by the ablation experiment that quantifies what ignoring the
        empirical model costs in throughput-estimation accuracy.
        """
        table = BandwidthTable([1.0, 1e12], [peak_gbps * efficiency] * 2)
        return cls(peak_gbps=peak_gbps, contiguous=table, strided=table, name=name)
