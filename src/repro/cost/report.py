"""Aggregated cost reports for design variants.

The report combines everything Figure 2 says the cost model emits —
resource estimates, performance (EKIT) estimates and memory-bandwidth
requirements — together with a feasibility verdict against the target
device (the paper notes that resource and bandwidth estimates mainly serve
to confirm whether a variant is *valid*, while throughput is the main
differentiator when choosing among valid variants).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cost.resource_model import ModuleResourceEstimate
from repro.cost.throughput import EKITEstimate, LimitingFactor
from repro.substrate.fpga_device import FPGADevice
from repro.substrate.synthesis import ResourceUsage

__all__ = ["FeasibilityCheck", "CostReport"]


@dataclass(frozen=True)
class FeasibilityCheck:
    """Whether a variant fits the device and its IO budget."""

    fits_resources: bool
    limiting_resource: str
    limiting_resource_utilization: float
    required_dram_gbps: float
    available_dram_gbps: float
    required_host_gbps: float
    available_host_gbps: float

    @property
    def fits_bandwidth(self) -> bool:
        return (
            self.required_dram_gbps <= self.available_dram_gbps
            and self.required_host_gbps <= self.available_host_gbps
        )

    @property
    def feasible(self) -> bool:
        return self.fits_resources and self.fits_bandwidth

    def as_dict(self) -> dict:
        return {
            "fits_resources": self.fits_resources,
            "limiting_resource": self.limiting_resource,
            "limiting_resource_utilization": self.limiting_resource_utilization,
            "required_dram_gbps": self.required_dram_gbps,
            "available_dram_gbps": self.available_dram_gbps,
            "required_host_gbps": self.required_host_gbps,
            "available_host_gbps": self.available_host_gbps,
            "feasible": self.feasible,
        }


@dataclass
class CostReport:
    """The full output of costing one design variant."""

    design: str
    device: FPGADevice
    resources: ModuleResourceEstimate
    throughput: EKITEstimate
    feasibility: FeasibilityCheck
    #: wall-clock seconds the estimation itself took (the paper stresses the
    #: estimator's speed: ~0.3 s per variant vs ~70 s for HLS estimates)
    estimation_seconds: float = 0.0
    notes: list[str] = field(default_factory=list)

    # -- convenience views -------------------------------------------------
    @property
    def usage(self) -> ResourceUsage:
        return self.resources.total

    @property
    def utilization(self) -> dict[str, float]:
        return self.usage.utilization(self.device)

    @property
    def ekit(self) -> float:
        return self.throughput.ekit

    @property
    def limiting_factor(self) -> LimitingFactor:
        """The performance-limiting parameter (enables targeted optimisation)."""
        return self.throughput.limiting_factor

    @property
    def feasible(self) -> bool:
        return self.feasibility.feasible

    def as_dict(self) -> dict:
        return {
            "design": self.design,
            "device": self.device.name,
            "resources": self.resources.as_dict(),
            "utilization": self.utilization,
            "throughput": self.throughput.as_dict(),
            "feasibility": self.feasibility.as_dict(),
            "estimation_seconds": self.estimation_seconds,
            "notes": list(self.notes),
        }

    # -- rendering -----------------------------------------------------------
    def to_text(self) -> str:
        """Human-readable report, one variant per call."""
        util = self.utilization
        b = self.throughput.breakdown
        lines = [
            f"Cost report for design variant {self.design!r} on {self.device.name}",
            "-" * 72,
            "Resources (estimated):",
            f"  ALUTs     : {self.usage.alut:12.0f}  ({util['alut']*100:6.2f}% of device)",
            f"  Registers : {self.usage.reg:12.0f}  ({util['reg']*100:6.2f}% of device)",
            f"  BRAM bits : {self.usage.bram_bits:12.0f}  ({util['bram_bits']*100:6.2f}% of device)",
            f"  DSP blocks: {self.usage.dsp:12.0f}  ({util['dsp']*100:6.2f}% of device)",
            "Throughput (EKIT):",
            f"  form                : {self.throughput.form.value}",
            f"  kernel-instances/s  : {self.ekit:12.4f}",
            f"  kernel-instance time: {self.throughput.kernel_instance_time_s*1e3:12.4f} ms",
            f"  limiting factor     : {self.limiting_factor.value}",
            "  time breakdown (per kernel instance):",
            f"    host transfer : {b.host_transfer*1e3:10.4f} ms",
            f"    offset fill   : {b.offset_fill*1e3:10.4f} ms",
            f"    pipeline fill : {b.pipeline_fill*1e3:10.4f} ms",
            f"    DRAM streaming: {b.dram_streaming*1e3:10.4f} ms",
            f"    compute       : {b.compute*1e3:10.4f} ms",
            "Feasibility:",
            f"  fits resources : {self.feasibility.fits_resources} "
            f"(worst: {self.feasibility.limiting_resource} at "
            f"{self.feasibility.limiting_resource_utilization*100:.1f}%)",
            f"  fits bandwidth : {self.feasibility.fits_bandwidth} "
            f"(needs {self.feasibility.required_dram_gbps:.2f} GB/s DRAM, "
            f"{self.feasibility.required_host_gbps:.2f} GB/s host)",
            f"  feasible       : {self.feasible}",
            f"Estimation took {self.estimation_seconds*1e3:.1f} ms",
        ]
        if self.notes:
            lines.append("Notes:")
            lines.extend(f"  - {note}" for note in self.notes)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()
