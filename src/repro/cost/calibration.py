"""Cost expressions and per-device calibration (paper §V-A, Figure 9).

The paper observes that the regularity of FPGA fabric lets very simple
first- or second-order expressions capture the resource usage of most
primitive instructions as a function of operand bit-width, fitted from a
handful of synthesis experiments per device:

* unsigned integer **division** ALUTs follow a quadratic trend line
  (``x^2 + 3.7x - 10.6`` on the paper's Stratix-V data), fitted from just
  three data points (18, 32 and 64 bits) and then interpolated — at 24
  bits the interpolation gives 654 ALUTs against an actual 652;
* **multiplication** shows piece-wise-linear ALUT behaviour and a step-wise
  DSP-block count with clearly identifiable discontinuities at the DSP
  input width;
* most other instructions are linear or constant.

This module provides those expression families, the fitting routines, and
the :class:`DeviceCostDB` that stores the fitted expressions for a device
(the output of the "one-time benchmark experiments" of Figure 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.ir.instructions import OPCODES
from repro.substrate.synthesis import CalibrationDataset, ResourceUsage

__all__ = [
    "CostExpression",
    "PolynomialCost",
    "PiecewiseLinearCost",
    "StepCost",
    "fit_polynomial",
    "fit_piecewise_linear",
    "fit_step",
    "OperatorCostModel",
    "DeviceCostDB",
    "calibrate_device",
]


# ----------------------------------------------------------------------
# Expression families
# ----------------------------------------------------------------------


class CostExpression:
    """A scalar cost as a function of operand bit-width."""

    kind = "abstract"

    def evaluate(self, width: float) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def as_dict(self) -> dict:  # pragma: no cover - interface
        raise NotImplementedError

    def __call__(self, width: float) -> float:
        return max(0.0, float(self.evaluate(width)))

    @staticmethod
    def from_dict(data: dict) -> "CostExpression":
        kind = data["kind"]
        if kind == "polynomial":
            return PolynomialCost(list(data["coefficients"]))
        if kind == "piecewise-linear":
            return PiecewiseLinearCost(list(data["xs"]), list(data["ys"]))
        if kind == "step":
            return StepCost(data["unit_width"], data["per_tile_pair"])
        raise ValueError(f"unknown cost expression kind {kind!r}")


@dataclass
class PolynomialCost(CostExpression):
    """``c[0] + c[1]*w + c[2]*w^2 + ...`` (coefficients in ascending order)."""

    coefficients: list[float]
    kind: str = field(default="polynomial", init=False)

    def evaluate(self, width: float) -> float:
        return float(np.polynomial.polynomial.polyval(width, self.coefficients))

    @property
    def degree(self) -> int:
        return len(self.coefficients) - 1

    def as_dict(self) -> dict:
        return {"kind": self.kind, "coefficients": [float(c) for c in self.coefficients]}

    def __str__(self) -> str:
        terms = []
        for power, coeff in enumerate(self.coefficients):
            if abs(coeff) < 1e-12:
                continue
            if power == 0:
                terms.append(f"{coeff:.3g}")
            elif power == 1:
                terms.append(f"{coeff:.3g}*x")
            else:
                terms.append(f"{coeff:.3g}*x^{power}")
        return " + ".join(terms) if terms else "0"


@dataclass
class PiecewiseLinearCost(CostExpression):
    """Linear interpolation between calibration points, linear extrapolation
    beyond them (using the slope of the nearest segment)."""

    xs: list[float]
    ys: list[float]
    kind: str = field(default="piecewise-linear", init=False)

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys) or len(self.xs) < 2:
            raise ValueError("piecewise-linear cost needs >= 2 (x, y) pairs")
        order = np.argsort(self.xs)
        self.xs = [float(self.xs[i]) for i in order]
        self.ys = [float(self.ys[i]) for i in order]

    def evaluate(self, width: float) -> float:
        xs, ys = self.xs, self.ys
        if width <= xs[0]:
            slope = (ys[1] - ys[0]) / (xs[1] - xs[0])
            return ys[0] + slope * (width - xs[0])
        if width >= xs[-1]:
            slope = (ys[-1] - ys[-2]) / (xs[-1] - xs[-2])
            return ys[-1] + slope * (width - xs[-1])
        return float(np.interp(width, xs, ys))

    def as_dict(self) -> dict:
        return {"kind": self.kind, "xs": self.xs, "ys": self.ys}


@dataclass
class StepCost(CostExpression):
    """Step-wise cost for tiled resources such as DSP blocks.

    Models ``per_tile_pair * ceil(ceil(w / unit_width)^2 / 2)`` — the number
    of hard multiplier tiles needed to build a ``w``-bit multiplier from
    ``unit_width``-bit partial products, with two tiles packed per DSP
    block.  ``per_tile_pair`` is normally 1.0 but is fitted so that devices
    with different packing still calibrate.
    """

    unit_width: float
    per_tile_pair: float = 1.0
    kind: str = field(default="step", init=False)

    def evaluate(self, width: float) -> float:
        if width <= 0:
            return 0.0
        tiles = math.ceil(width / self.unit_width)
        return self.per_tile_pair * math.ceil(tiles * tiles / 2)

    def as_dict(self) -> dict:
        return {"kind": self.kind, "unit_width": self.unit_width, "per_tile_pair": self.per_tile_pair}


# ----------------------------------------------------------------------
# Fitting
# ----------------------------------------------------------------------


def fit_polynomial(points: list[tuple[float, float]], degree: int) -> PolynomialCost:
    """Least-squares polynomial fit (exactly determined when possible).

    With ``degree + 1`` points this is interpolation — the paper's quadratic
    divider trend line is fitted from exactly three widths.
    """
    if len(points) < degree + 1:
        raise ValueError(f"need at least {degree + 1} points for a degree-{degree} fit")
    xs = np.array([p[0] for p in points], dtype=float)
    ys = np.array([p[1] for p in points], dtype=float)
    coeffs = np.polynomial.polynomial.polyfit(xs, ys, degree)
    return PolynomialCost([float(c) for c in coeffs])


def fit_piecewise_linear(points: list[tuple[float, float]]) -> PiecewiseLinearCost:
    """Use the calibration points directly as the breakpoints."""
    if len(points) < 2:
        raise ValueError("need at least 2 points for a piecewise-linear fit")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    return PiecewiseLinearCost(xs, ys)


def fit_step(points: list[tuple[float, float]], unit_width: float = 18.0) -> StepCost:
    """Fit the per-tile-pair scale of a step cost from calibration points."""
    if not points:
        raise ValueError("need at least 1 point for a step fit")
    ratios = []
    for width, value in points:
        tiles = math.ceil(width / unit_width)
        expected = math.ceil(tiles * tiles / 2)
        if expected > 0 and value > 0:
            ratios.append(value / expected)
    scale = float(np.mean(ratios)) if ratios else 0.0
    return StepCost(unit_width=unit_width, per_tile_pair=scale)


# ----------------------------------------------------------------------
# Per-operator model and the device database
# ----------------------------------------------------------------------


@dataclass
class OperatorCostModel:
    """Fitted cost expressions for one (opcode, constant-operand) pair."""

    opcode: str
    constant_operand: bool
    expressions: dict[str, CostExpression]

    def estimate(self, width: int) -> ResourceUsage:
        return ResourceUsage(
            alut=self.expressions["alut"](width),
            reg=self.expressions["reg"](width),
            bram_bits=self.expressions["bram_bits"](width),
            dsp=self.expressions["dsp"](width),
        )

    def as_dict(self) -> dict:
        return {
            "opcode": self.opcode,
            "constant_operand": self.constant_operand,
            "expressions": {k: e.as_dict() for k, e in self.expressions.items()},
        }

    @staticmethod
    def from_dict(data: dict) -> "OperatorCostModel":
        return OperatorCostModel(
            opcode=data["opcode"],
            constant_operand=bool(data["constant_operand"]),
            expressions={
                k: CostExpression.from_dict(v) for k, v in data["expressions"].items()
            },
        )


#: Which expression family to fit per (opcode category, resource).
_FIT_RULES: dict[str, dict[str, tuple[str, int]]] = {
    # category: resource -> (family, degree)
    "div": {"alut": ("poly", 2), "reg": ("poly", 2), "bram_bits": ("poly", 1), "dsp": ("poly", 0)},
    "mul": {"alut": ("pwl", 0), "reg": ("poly", 1), "bram_bits": ("poly", 0), "dsp": ("step", 0)},
    "special": {"alut": ("poly", 2), "reg": ("poly", 2), "bram_bits": ("poly", 1), "dsp": ("poly", 0)},
    "default": {"alut": ("poly", 1), "reg": ("poly", 1), "bram_bits": ("poly", 1), "dsp": ("poly", 0)},
}


def _fit_one(
    family: str, degree: int, points: list[tuple[float, float]], unit_width: float
) -> CostExpression:
    if family == "pwl" and len(points) >= 2:
        return fit_piecewise_linear(points)
    if family == "step":
        return fit_step(points, unit_width)
    # polynomial fallback; cap degree by available points
    usable_degree = min(degree, len(points) - 1)
    if usable_degree < 0:
        return PolynomialCost([0.0])
    return fit_polynomial(points, usable_degree)


@dataclass
class DeviceCostDB:
    """Fitted per-instruction cost expressions for one device."""

    device_name: str
    dsp_input_width: float = 18.0
    models: dict[tuple[str, bool], OperatorCostModel] = field(default_factory=dict)

    def add(self, model: OperatorCostModel) -> None:
        self.models[(model.opcode, model.constant_operand)] = model

    def has(self, opcode: str, constant_operand: bool = False) -> bool:
        return (opcode, constant_operand) in self.models

    def lookup(self, opcode: str, width: int, constant_operand: bool = False) -> ResourceUsage:
        """Estimate the resources of one operator instance.

        Falls back first to the non-constant variant of the same opcode,
        then to another calibrated opcode of the same category (the cost
        model's category abstraction), before giving up.
        """
        key = (opcode, constant_operand)
        if key in self.models:
            return self.models[key].estimate(width)
        if (opcode, False) in self.models:
            return self.models[(opcode, False)].estimate(width)
        category = OPCODES[opcode].category if opcode in OPCODES else None
        if category is not None:
            for (other, const), model in self.models.items():
                if const is False and other in OPCODES and OPCODES[other].category == category:
                    return model.estimate(width)
        raise KeyError(
            f"no cost model for opcode {opcode!r} (constant_operand={constant_operand}) "
            f"on device {self.device_name!r}"
        )

    def opcodes(self) -> set[str]:
        return {op for op, _ in self.models}

    def as_dict(self) -> dict:
        return {
            "device_name": self.device_name,
            "dsp_input_width": self.dsp_input_width,
            "models": [m.as_dict() for m in self.models.values()],
        }

    @staticmethod
    def from_dict(data: dict) -> "DeviceCostDB":
        db = DeviceCostDB(
            device_name=data["device_name"],
            dsp_input_width=float(data.get("dsp_input_width", 18.0)),
        )
        for rec in data["models"]:
            db.add(OperatorCostModel.from_dict(rec))
        return db


def calibrate_device(
    dataset: CalibrationDataset,
    dsp_input_width: float = 18.0,
) -> DeviceCostDB:
    """Fit a :class:`DeviceCostDB` from one-time calibration measurements.

    This is the step the paper performs once per FPGA target (Figure 2):
    synthesise each primitive at a few widths, then fit the family of
    expression appropriate to the primitive (quadratic for dividers,
    piece-wise linear + DSP steps for multipliers, linear otherwise).
    """
    db = DeviceCostDB(device_name=dataset.device_name, dsp_input_width=dsp_input_width)

    combos = {(p.opcode, p.constant_operand) for p in dataset.points}
    for opcode, constant_operand in sorted(combos):
        points = [
            p for p in dataset.points
            if p.opcode == opcode and p.constant_operand == constant_operand
        ]
        category = OPCODES[opcode].category if opcode in OPCODES else "default"
        rules = _FIT_RULES.get(category, _FIT_RULES["default"])
        expressions: dict[str, CostExpression] = {}
        for resource in ResourceUsage.RESOURCES:
            series = [(float(p.width), float(getattr(p.usage, resource))) for p in points]
            family, degree = rules.get(resource, ("poly", 1))
            if constant_operand and resource == "dsp":
                # constant multiplies never use DSPs regardless of width
                expressions[resource] = PolynomialCost([0.0])
                continue
            expressions[resource] = _fit_one(family, degree, series, dsp_input_width)
        db.add(OperatorCostModel(opcode, constant_operand, expressions))
    return db
