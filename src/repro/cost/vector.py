"""Vectorized struct-of-arrays evaluation of the EKIT cost model.

The scalar estimator walks Python dataclasses per design point; this
module evaluates whole grids at once.  Each design family is lowered to a
:class:`FamilyVector` — the flat record of lane-invariant scalars that
``compiler/lanescale.estimate_from_structure`` and the three EKIT forms
of :mod:`repro.cost.throughput` consume — and the lane and clock axes
become numpy array axes: resource totals, feasibility masks, time
breakdowns, limiting factors and EKIT all come out as arrays in one
broadcast pass.

The contract with the scalar path is absolute: every array expression
here mirrors the scalar expression tree *operation for operation* (same
association order, same int->float promotions, ``np.rint`` for the
banker's rounding of ``round()``), so a dense sweep re-costed pointwise
produces byte-identical canonical reports after the suite's 9-significant
-digit rounding.  The scalar path stays on as the differential oracle —
see ``tests/explore/test_dense.py``.

This module deliberately imports no compiler machinery (the compiler
package imports :mod:`repro.cost`); family extraction and report
materialization live in :mod:`repro.explore.dense`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cost.throughput import LimitingFactor
from repro.models.memory_execution import MemoryExecutionForm

__all__ = [
    "DenseUnsupportedError",
    "FamilyVector",
    "LaneAxis",
    "GroupArrays",
    "LIMITING_ORDER",
    "RESOURCE_ORDER",
    "lane_axis",
    "evaluate_group",
    "pareto_mask",
]

#: Candidate order of the scalar ``_limiting_factor`` dict — the argmax
#: over the stacked time legs must break ties exactly like ``max`` over a
#: dict with this insertion order (first maximum wins).
LIMITING_ORDER = (
    LimitingFactor.HOST_BANDWIDTH,
    LimitingFactor.OFFSET_FILL,
    LimitingFactor.PIPELINE_FILL,
    LimitingFactor.DRAM_BANDWIDTH,
    LimitingFactor.COMPUTE,
)

#: Resource order of ``ResourceUsage.RESOURCES`` — the utilisation argmax
#: must pick the same first-maximum resource as ``max(util, key=util.get)``.
RESOURCE_ORDER = ("alut", "reg", "bram_bits", "dsp")


class DenseUnsupportedError(RuntimeError):
    """The dense path cannot represent this space; fall back to scalar.

    Raised when a design is not lane-separable (no family analysis), when
    lane scaling is disabled, or when a backend has no dense lowering.
    The exploration engine catches it and re-costs through the per-point
    oracle, so callers always get an answer.
    """


@dataclass(frozen=True)
class FamilyVector:
    """Lane-invariant scalars of one design family on one device.

    Everything the dense evaluator needs: the per-instance PE datapath
    usage, the per-lane offset-buffer usage (summed over buffers, not yet
    scaled by lanes), the scheduler's balancing-register bits, and the
    Table-I scalars that do not vary along the lane or clock axes.
    """

    kernel: str
    device: str
    pe_name: str
    #: per-instance PE datapath usage, RESOURCE_ORDER components (raw floats)
    pe_usage: tuple[float, float, float, float]
    #: summed per-lane offset-buffer usage, RESOURCE_ORDER components
    buffer_usage: tuple[float, float, float, float]
    #: scheduler balancing + input-delay bits per lane
    balancing_bits: int
    #: streams per lane (input + output)
    in_streams_per_lane: int
    out_streams_per_lane: int
    element_width: int
    word_bytes: int
    nwpt: int
    noff: int
    kpd: int
    ni: int
    dv: int

    @property
    def stream_usage(self) -> tuple[float, float, float, float]:
        """Per-stream control usage (``estimate_stream_control``'s rates)."""
        return (40 + self.element_width / 2, 48 + self.element_width, 0.0, 0.0)


@dataclass(frozen=True)
class LaneAxis:
    """Resource verdicts along the lane axis of one family on one device."""

    lanes: np.ndarray  #: int64 (L,)
    fits_resources: np.ndarray  #: bool (L,)
    #: the worst (limiting) fractional utilisation per lane count
    util_max: np.ndarray  #: float64 (L,)
    #: index into RESOURCE_ORDER of the limiting resource per lane count
    limiting_resource: np.ndarray  #: int64 (L,)


def lane_axis(fv: FamilyVector, lanes: Sequence[int], capacities: dict) -> LaneAxis:
    """Mirror ``estimate_from_structure`` + the balancing-register fold.

    Per component the scalar path computes, in order::

        total  = 0.0 + pe * lanes            # instance accumulation
        total += buffer_per_lane * lanes     # offset buffers, lane-scaled
        total += per_stream * total_streams  # stream control
        total  = round(total)                # banker's rounding
        total.reg += balancing_bits * lanes  # post-rounding register fold

    and the feasibility stage divides by the device capacities in
    ``RESOURCE_ORDER``, taking the *first* maximum as limiting.
    """
    k = np.asarray(lanes, dtype=np.int64)
    kf = k.astype(np.float64)
    streams = (fv.in_streams_per_lane + fv.out_streams_per_lane) * k
    sf = streams.astype(np.float64)

    util = np.empty((len(RESOURCE_ORDER), len(k)), dtype=np.float64)
    stream_usage = fv.stream_usage
    for i, name in enumerate(RESOURCE_ORDER):
        acc = fv.pe_usage[i] * kf
        acc = acc + fv.buffer_usage[i] * kf
        acc = acc + stream_usage[i] * sf
        total = np.rint(acc)
        if name == "reg":
            total = total + (fv.balancing_bits * k).astype(np.float64)
        util[i] = total / float(capacities[name])

    return LaneAxis(
        lanes=k,
        fits_resources=np.all(util <= 1.0, axis=0),
        util_max=np.max(util, axis=0),
        limiting_resource=np.argmax(util, axis=0),
    )


@dataclass(frozen=True)
class GroupArrays:
    """One (device, form, pattern) group evaluated over lanes x clocks."""

    form: MemoryExecutionForm
    ekit: np.ndarray  #: float64 (L, C)
    total_s: np.ndarray  #: float64 (L, C)
    #: index into LIMITING_ORDER, per point
    limiting: np.ndarray  #: int64 (L, C)
    fits_bandwidth: np.ndarray  #: bool (L, C)
    feasible: np.ndarray  #: bool (L, C)


def evaluate_group(
    fv: FamilyVector,
    lanes: np.ndarray,
    fd_mhz: np.ndarray,
    *,
    form: MemoryExecutionForm,
    ngs: int,
    nki: int,
    hpb_gbps: float,
    rho_h: float,
    gpb_gbps: float,
    rho_g: float,
    fits_resources: np.ndarray,
) -> GroupArrays:
    """Evaluate one EKIT form over the lane x clock plane.

    Mirrors ``_breakdown`` / ``_limiting_factor`` / ``FeasibilityStage.run``
    expression for expression; scalars are computed in Python floats with
    the scalar path's association order, arrays only carry the axes.
    """
    k = np.asarray(lanes, dtype=np.int64)
    fd_hz = np.asarray(fd_mhz, dtype=np.float64) * 1e6  # (C,)

    # -- lane/clock-invariant scalars (Python float arithmetic) --------
    sustained_host = hpb_gbps * rho_h
    sustained_dram = gpb_gbps * rho_g
    stream_bytes = float(ngs) * fv.nwpt * fv.word_bytes
    host_scaling = 1.0 if form is MemoryExecutionForm.A else 1.0 / nki
    host_transfer = stream_bytes / (sustained_host * 1e9) * host_scaling
    offset_fill = (fv.noff * fv.word_bytes) / (sustained_dram * 1e9)
    dram_streaming = stream_bytes / (sustained_dram * 1e9)
    nto = 1.0 / (fv.ni * fv.nwpt)
    compute_num = ngs * fv.nwpt * nto * fv.ni

    # -- the broadcast axes --------------------------------------------
    pipeline_fill = fv.kpd / fd_hz  # (C,)
    compute = compute_num / (fd_hz[None, :] * k[:, None].astype(np.float64) * fv.dv)

    if form is MemoryExecutionForm.C:
        # Equation 3: dram_streaming is zeroed; the max collapses to compute
        soc = compute
        leg4 = compute
        leg4_code = np.int64(LIMITING_ORDER.index(LimitingFactor.COMPUTE))
        limiting4 = np.broadcast_to(leg4_code, compute.shape)
    else:
        soc = np.maximum(dram_streaming, compute)
        leg4 = soc
        limiting4 = np.where(
            dram_streaming >= compute,
            np.int64(LIMITING_ORDER.index(LimitingFactor.DRAM_BANDWIDTH)),
            np.int64(LIMITING_ORDER.index(LimitingFactor.COMPUTE)),
        )

    # TimeBreakdown.total's left-associated sum (+ 0.0 reconfiguration)
    total = (host_transfer + offset_fill + pipeline_fill)[None, :] + soc + 0.0
    ekit = 1.0 / total

    # the scalar candidate dict in insertion order; argmax = first max
    legs = np.empty((4,) + total.shape, dtype=np.float64)
    legs[0] = host_transfer
    legs[1] = offset_fill
    legs[2] = pipeline_fill[None, :]
    legs[3] = leg4
    first = np.argmax(legs, axis=0)
    limiting = np.where(first == 3, limiting4, first).astype(np.int64)

    # -- FeasibilityStage.run's bandwidth demand -----------------------
    wps = (k * fv.dv)[:, None].astype(np.float64) * fd_hz[None, :]
    full_rate = wps * fv.nwpt * fv.word_bytes / 1e9
    if form is MemoryExecutionForm.C:
        required_dram = np.zeros_like(full_rate)
        required_host = required_dram
    elif form is MemoryExecutionForm.B:
        required_dram = full_rate
        required_host = full_rate / nki
    else:
        required_dram = full_rate
        required_host = full_rate
    fits_bandwidth = (required_dram <= sustained_dram) & (required_host <= sustained_host)
    feasible = np.asarray(fits_resources, dtype=bool)[:, None] & fits_bandwidth

    return GroupArrays(
        form=form,
        ekit=ekit,
        total_s=total,
        limiting=limiting,
        fits_bandwidth=fits_bandwidth,
        feasible=feasible,
    )


# ----------------------------------------------------------------------
# Vectorized Pareto dominance
# ----------------------------------------------------------------------


def pareto_mask(scores: np.ndarray) -> np.ndarray:
    """Boolean mask of the non-dominated rows of ``scores`` (maximised).

    A row is dominated iff some row with a *different* score vector is
    >= in every component — identical score vectors never dominate each
    other, so equal-score duplicates survive together, exactly like the
    pairwise scan this replaces.  Two objectives take an O(n log n)
    sort-based pass; higher dimensions fall back to a memory-blocked
    unique-row comparison.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2:
        raise ValueError(f"scores must be 2-D (points x objectives), got {scores.shape}")
    n, d = scores.shape
    if n == 0:
        return np.zeros(0, dtype=bool)
    uniq, inverse = np.unique(scores, axis=0, return_inverse=True)
    inverse = inverse.reshape(-1)
    u = len(uniq)
    if u == 1:
        return np.ones(n, dtype=bool)

    if d == 2:
        # reversed unique order: first objective descending, second
        # descending within ties of the first
        rev = uniq[::-1]
        a, b = rev[:, 0], rev[:, 1]
        starts = np.empty(u, dtype=bool)
        starts[0] = True
        starts[1:] = a[1:] != a[:-1]
        start_pos = np.flatnonzero(starts)
        cummax_b = np.maximum.accumulate(b)
        # best second objective among rows with strictly larger first one
        prev_max = np.full(len(start_pos), -np.inf)
        prev_max[1:] = cummax_b[start_pos[1:] - 1]
        group = np.cumsum(starts) - 1
        dominated_rev = (~starts) | (prev_max[group] >= b)
        dominated = dominated_rev[::-1]
    else:
        dominated = np.zeros(u, dtype=bool)
        block = max(1, (1 << 22) // max(1, u * d))
        for start in range(0, u, block):
            blk = uniq[start : start + block]
            ge = (uniq[None, :, :] >= blk[:, None, :]).all(axis=-1)
            eq = (uniq[None, :, :] == blk[:, None, :]).all(axis=-1)
            dominated[start : start + block] = (ge & ~eq).any(axis=1)

    return ~dominated[inverse]
