"""The TyTra cost model (paper §V) — the reproduction's core contribution.

Given a design variant expressed in TyTra-IR, the cost model produces in
well under a second:

* **resource-utilisation estimates** — ALUTs, registers, block-RAM bits and
  DSP blocks, accumulated from per-instruction cost expressions fitted to a
  one-time set of synthesis experiments per device (Figure 9);
* **sustained-bandwidth estimates** — an empirical model of how transfer
  size and access contiguity scale the peak host and device-DRAM
  bandwidths (Figure 10), yielding the ``rho`` scaling factors;
* **throughput estimates** — the EKIT (Effective Kernel-Instance
  Throughput) expressions, Equations (1)-(3), one per memory-execution
  form, which also expose the performance-limiting factor.

Sub-modules
-----------
``calibration``
    Cost-expression types (polynomial, piece-wise linear, step) and the
    fitting of a per-device cost database from calibration data.
``resource_model``
    Walks Compute-IR functions and accumulates per-instruction, offset
    buffer and stream-control resource costs.
``bandwidth``
    The sustained-bandwidth empirical model and ``rho`` factors.
``throughput``
    The EKIT parameters and equations, with time breakdown and limiting
    factor analysis.
``report``
    Aggregation of everything into a single cost report for a variant.
"""

from repro.cost.cache import BoundedCache, DiskCache, default_disk_cache
from repro.cost.calibration import (
    CostExpression,
    DeviceCostDB,
    PiecewiseLinearCost,
    PolynomialCost,
    StepCost,
    calibrate_device,
    fit_piecewise_linear,
    fit_polynomial,
    fit_step,
)
from repro.cost.resource_model import ResourceEstimator
from repro.cost.bandwidth import BandwidthTable, SustainedBandwidthModel
from repro.cost.throughput import (
    EKITEstimate,
    EKITParameters,
    LimitingFactor,
    ekit_form_a,
    ekit_form_b,
    ekit_form_c,
    estimate_throughput,
)
from repro.cost.report import CostReport, FeasibilityCheck

__all__ = [
    "BoundedCache",
    "DiskCache",
    "default_disk_cache",
    "CostExpression",
    "PolynomialCost",
    "PiecewiseLinearCost",
    "StepCost",
    "fit_polynomial",
    "fit_piecewise_linear",
    "fit_step",
    "DeviceCostDB",
    "calibrate_device",
    "ResourceEstimator",
    "BandwidthTable",
    "SustainedBandwidthModel",
    "EKITParameters",
    "EKITEstimate",
    "LimitingFactor",
    "ekit_form_a",
    "ekit_form_b",
    "ekit_form_c",
    "estimate_throughput",
    "CostReport",
    "FeasibilityCheck",
]
