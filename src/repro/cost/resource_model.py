"""Resource-utilisation cost model (paper §V-A).

The overall resource cost of a design is calculated by accumulating the
cost of individual IR instructions (looked up in the fitted
:class:`~repro.cost.calibration.DeviceCostDB`) together with the
structural information implied by the type of each IR function: lane
replication under ``par`` functions, the offset/delay buffers implied by
stream-offset declarations, and the per-stream control logic of the
stream-control block.

:class:`ModuleStructure` performs the structural part of "parsing the IR"
(Figure 11's estimation flow): it walks the configuration hierarchy from
``main``, counts instances of each leaf datapath, identifies the kernel
pipeline, and collects the throughput-model parameters that derive from
the program (``NI``, ``Noff``, ``NWPT``, ``KNL``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.functions import FunctionKind, Module, StreamDirection
from repro.ir.instructions import Instruction, OffsetInstruction
from repro.cost.calibration import DeviceCostDB
from repro.substrate.synthesis import DesignNetlist, NetlistOperator, ResourceUsage

__all__ = ["ModuleStructure", "FunctionResourceEstimate", "ModuleResourceEstimate", "ResourceEstimator"]


# ----------------------------------------------------------------------
# Structural analysis of a module
# ----------------------------------------------------------------------


@dataclass
class ModuleStructure:
    """Structural summary of a design variant extracted from its IR.

    ``module`` is the IR the summary was extracted from.  Structures
    *derived* analytically by the lane-scaling law (see
    :mod:`repro.compiler.lanescale`) may carry ``None`` when the member
    module was never lowered; everything the cost model reads lives in the
    scalar fields below, so a derived structure is a full citizen of the
    estimation flow.
    """

    module: Module | None
    #: instantiation count of every function reachable from the entry
    instance_counts: dict[str, int]
    #: the leaf datapath with the most instructions — the kernel pipeline
    kernel_function: str
    #: number of parallel kernel lanes (``KNL``)
    lanes: int
    #: datapath instructions per processing element (``NI``)
    instructions_per_pe: int
    #: per-lane offset buffers as (function, words, bits) records
    offset_buffers: list[tuple[str, int, int]]
    #: maximum offset span in words (``Noff``)
    max_offset_span_words: int
    #: stream words per work-item per lane (``NWPT``)
    words_per_item: int
    #: total streams over the whole design (all lanes)
    input_streams: int
    output_streams: int
    #: dominant stream element width in bits
    element_width: int

    @property
    def total_streams(self) -> int:
        return self.input_streams + self.output_streams

    # ------------------------------------------------------------------
    @classmethod
    def from_module(cls, module: Module) -> "ModuleStructure":
        counts: dict[str, int] = {}

        def visit(name: str, multiplicity: int) -> None:
            counts[name] = counts.get(name, 0) + multiplicity
            func = module.get_function(name)
            for call in func.calls():
                visit(call.callee, multiplicity)

        entry = module.entry
        for call in entry.calls():
            visit(call.callee, 1)

        leaves = [
            name
            for name, count in counts.items()
            if module.get_function(name).is_leaf and count > 0
        ]
        if not leaves:
            raise ValueError("design has no leaf datapath functions")

        kernel = max(leaves, key=lambda n: module.get_function(n).instruction_count())
        kernel_func = module.get_function(kernel)
        lanes = counts[kernel]

        # instructions per PE: total leaf instructions normalised per lane
        total_leaf_instructions = sum(
            counts[name] * module.get_function(name).instruction_count() for name in leaves
        )
        instructions_per_pe = max(1, round(total_leaf_instructions / max(lanes, 1)))

        # offset buffers of one lane (over all leaf functions once each)
        offset_buffers: list[tuple[str, int, int]] = []
        max_span = 0
        for name in leaves:
            func = module.get_function(name)
            for off in func.offsets():
                words = abs(module.resolve_offset(off.offset))
                bits = words * off.result_type.width
                offset_buffers.append((name, words, bits))
                max_span = max(max_span, words)

        # words per item (per lane): explicit port declarations when present,
        # otherwise kernel arguments plus one output stream
        ports = [p for p in module.port_declarations if p.function == kernel]
        if ports:
            words_per_item = len(ports)
            in_per_lane = sum(1 for p in ports if p.direction is StreamDirection.INPUT)
            out_per_lane = max(1, len(ports) - in_per_lane)
        else:
            in_per_lane = max(1, len(kernel_func.args))
            out_per_lane = max(1, len(kernel_func.reductions()) or 1)
            words_per_item = in_per_lane + out_per_lane

        # stream totals: prefer the Manage-IR stream objects when declared
        if module.stream_objects:
            input_streams = sum(
                1 for s in module.stream_objects.values()
                if s.direction is StreamDirection.INPUT
            )
            output_streams = len(module.stream_objects) - input_streams
        else:
            input_streams = in_per_lane * lanes
            output_streams = out_per_lane * lanes

        widths = [t.width for t, _ in kernel_func.args] or [32]
        element_width = max(widths)

        return cls(
            module=module,
            instance_counts=counts,
            kernel_function=kernel,
            lanes=lanes,
            instructions_per_pe=instructions_per_pe,
            offset_buffers=offset_buffers,
            max_offset_span_words=max_span,
            words_per_item=words_per_item,
            input_streams=input_streams,
            output_streams=output_streams,
            element_width=element_width,
        )

    # ------------------------------------------------------------------
    def to_netlist(self, balancing_register_bits: int = 0) -> DesignNetlist:
        """Produce the structural netlist handed to the synthesiser.

        The netlist describes one lane; replication is carried in ``lanes``.
        """
        operators: list[NetlistOperator] = []
        for name, count in self.instance_counts.items():
            func = self.module.get_function(name)
            if not func.is_leaf:
                continue
            per_lane_count = max(1, round(count / max(self.lanes, 1)))
            for _ in range(per_lane_count):
                for instr in func.instructions():
                    operators.append(
                        NetlistOperator(
                            opcode=instr.opcode,
                            type=instr.result_type,
                            constant_operand=bool(instr.constant_operands),
                        )
                    )
        return DesignNetlist(
            operators=operators,
            offset_buffer_bits=[bits for _, _, bits in self.offset_buffers],
            input_streams=max(1, self.input_streams // max(self.lanes, 1)),
            output_streams=max(1, self.output_streams // max(self.lanes, 1)),
            lanes=self.lanes,
            balancing_register_bits=balancing_register_bits,
            name=self.module.name,
        )


# ----------------------------------------------------------------------
# Estimates
# ----------------------------------------------------------------------


@dataclass
class FunctionResourceEstimate:
    """Per-function (single instance) resource estimate."""

    function: str
    usage: ResourceUsage
    instances: int

    @property
    def total(self) -> ResourceUsage:
        return self.usage.scaled(self.instances)


@dataclass
class ModuleResourceEstimate:
    """Whole-design resource estimate with its breakdown."""

    design: str
    total: ResourceUsage
    functions: list[FunctionResourceEstimate] = field(default_factory=list)
    offset_buffers: ResourceUsage = field(default_factory=ResourceUsage)
    stream_control: ResourceUsage = field(default_factory=ResourceUsage)
    structure: ModuleStructure | None = None

    def as_dict(self) -> dict:
        return {
            "design": self.design,
            "total": self.total.as_dict(),
            "functions": [
                {"function": f.function, "instances": f.instances, "usage": f.usage.as_dict()}
                for f in self.functions
            ],
            "offset_buffers": self.offset_buffers.as_dict(),
            "stream_control": self.stream_control.as_dict(),
        }


# ----------------------------------------------------------------------
# The estimator
# ----------------------------------------------------------------------


class ResourceEstimator:
    """Accumulates per-instruction costs into a design-level estimate."""

    #: Buffers at or below this many bits are estimated as registers /
    #: ALM shift registers; larger ones as block RAM (matches the design
    #: rule the synthesiser applies).
    REGISTER_BUFFER_THRESHOLD_BITS = 640

    def __init__(self, cost_db: DeviceCostDB):
        self.cost_db = cost_db

    # -- single statements -------------------------------------------------
    def estimate_instruction(self, instr: Instruction) -> ResourceUsage:
        width = instr.result_type.width
        constant_operand = bool(instr.constant_operands)
        return self.cost_db.lookup(instr.opcode, width, constant_operand)

    def estimate_offset_buffer(self, offset: OffsetInstruction, module: Module) -> ResourceUsage:
        words = abs(module.resolve_offset(offset.offset))
        bits = words * offset.result_type.width
        return self._buffer_usage(bits)

    def _buffer_usage(self, bits: int) -> ResourceUsage:
        if bits <= 0:
            return ResourceUsage()
        if bits <= self.REGISTER_BUFFER_THRESHOLD_BITS:
            return ResourceUsage(alut=bits / 10, reg=bits)
        return ResourceUsage(alut=24, reg=32, bram_bits=bits)

    def estimate_stream_control(self, streams: int, element_width: int) -> ResourceUsage:
        if streams <= 0:
            return ResourceUsage()
        per_stream = ResourceUsage(alut=40 + element_width / 2, reg=48 + element_width)
        return per_stream.scaled(streams)

    # -- functions and modules ----------------------------------------------
    def estimate_function_body(self, func) -> ResourceUsage:
        """Estimate one instance of a function object's datapath."""
        usage = ResourceUsage()
        for instr in func.instructions():
            usage += self.estimate_instruction(instr)
        return usage

    def estimate_function(self, function_name: str, module: Module) -> ResourceUsage:
        """Estimate one instance of a function's datapath (no buffers/streams)."""
        return self.estimate_function_body(module.get_function(function_name))

    def leaf_usages(self, module: Module, structure: ModuleStructure) -> dict[str, ResourceUsage]:
        """Per-instance datapath usage of every instantiated leaf function."""
        usages: dict[str, ResourceUsage] = {}
        for name, count in structure.instance_counts.items():
            if count == 0 or not module.get_function(name).is_leaf:
                continue
            usages[name] = self.estimate_function(name, module)
        return usages

    def estimate_from_structure(
        self,
        structure: ModuleStructure,
        leaf_usages: dict[str, ResourceUsage],
        design: str,
    ) -> ModuleResourceEstimate:
        """Fold per-leaf usages and structural counts into a design estimate.

        This is the single arithmetic implementation behind both the full
        path (``leaf_usages`` computed by walking the module) and the
        lane-scaling path (``leaf_usages`` reused from the design family's
        canonical member) — sharing it is what makes lane-derived reports
        bit-identical to fully analysed ones.
        """
        functions: list[FunctionResourceEstimate] = []
        total = ResourceUsage()
        for name, count in sorted(structure.instance_counts.items()):
            if name not in leaf_usages or count == 0:
                continue
            usage = leaf_usages[name]
            functions.append(FunctionResourceEstimate(name, usage, count))
            total += usage.scaled(count)

        buffers = ResourceUsage()
        for _, _, bits in structure.offset_buffers:
            buffers += self._buffer_usage(bits)
        buffers = buffers.scaled(structure.lanes)
        total += buffers

        streams = self.estimate_stream_control(structure.total_streams, structure.element_width)
        total += streams

        return ModuleResourceEstimate(
            design=design,
            total=total.rounded(),
            functions=functions,
            offset_buffers=buffers.rounded(),
            stream_control=streams.rounded(),
            structure=structure,
        )

    def estimate_module(
        self, module: Module, structure: ModuleStructure | None = None
    ) -> ModuleResourceEstimate:
        """Estimate a whole design variant from its IR."""
        if structure is None:
            structure = ModuleStructure.from_module(module)
        return self.estimate_from_structure(
            structure, self.leaf_usages(module, structure), design=module.name
        )
