"""The TyTra-FPGA design-space abstraction (paper §III-4, Figure 5).

The design space is spanned by three axes:

* **pipeline parallelism** — medium-grained parallelism by pipelining loop
  iterations;
* **thread parallelism** — replicating the pipeline lane (or vectorising);
* **degree of re-use** — folding the kernel onto fewer functional units
  when it is too large to fit spatially, up to full instruction-processor
  style execution and run-time reconfiguration.

The named configuration classes of Figure 5 are:

=====  ==========================================================
class  meaning
=====  ==========================================================
C0     anywhere in the design space (unconstrained)
C1     replicated pipeline lanes (x-y plane): thread + pipeline
       parallelism, fine-grained ILP presumed within each lane
C2     a single pipelined kernel lane
C3     vectorised loops (medium-grained) or pure thread
       parallelism without pipelining
C4     scalar instruction processor (full re-use, no parallelism)
C5     vector instruction processor (re-use + vectorisation)
C6     run-time reconfiguration (kernel does not fit at once)
=====  ==========================================================

The paper expects C1 to be the preferred route for most small to medium
sized HPC kernels, and this is what the TyTra compiler's supported
configurations (Figure 7) target.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["ConfigurationClass", "DesignPoint", "classify_design_point"]


class ConfigurationClass(str, Enum):
    """Named regions of the TyTra design space (Figure 5)."""

    C0 = "C0"
    C1 = "C1"
    C2 = "C2"
    C3 = "C3"
    C4 = "C4"
    C5 = "C5"
    C6 = "C6"

    @property
    def description(self) -> str:
        return _DESCRIPTIONS[self]


_DESCRIPTIONS = {
    ConfigurationClass.C0: "anywhere in the design space",
    ConfigurationClass.C1: "replicated pipeline lanes (thread + pipeline parallelism)",
    ConfigurationClass.C2: "single pipelined kernel lane",
    ConfigurationClass.C3: "vectorised loops or thread parallelism without pipelining",
    ConfigurationClass.C4: "scalar instruction processor (full re-use)",
    ConfigurationClass.C5: "vector instruction processor",
    ConfigurationClass.C6: "run-time reconfiguration",
}


@dataclass(frozen=True)
class DesignPoint:
    """Coordinates of a design variant in the TyTra design space.

    Attributes
    ----------
    pipelined:
        True when loop iterations are pipelined through a datapath
        (``pipe`` functions).
    lanes:
        Number of replicated kernel lanes — the thread-parallelism axis
        (``KNL``).
    vectorization:
        Degree of vectorisation within a lane (``DV``).
    reuse_factor:
        Degree of re-use: 1 means fully spatial; greater than 1 means
        functional units are time-multiplexed (``NTO`` rises with it);
        ``float('inf')`` would be an instruction processor, modelled here
        by any value >= ``INSTRUCTION_PROCESSOR_REUSE``.
    reconfigurations:
        Number of run-time reconfigurations needed per kernel instance
        (0 for designs that fit on the device at once).
    """

    pipelined: bool = True
    lanes: int = 1
    vectorization: int = 1
    reuse_factor: int = 1
    reconfigurations: int = 0

    #: Re-use factor at and beyond which the design degenerates into an
    #: instruction-processor style configuration (C4/C5).
    INSTRUCTION_PROCESSOR_REUSE = 64

    def __post_init__(self) -> None:
        if self.lanes < 1:
            raise ValueError("lanes must be >= 1")
        if self.vectorization < 1:
            raise ValueError("vectorization must be >= 1")
        if self.reuse_factor < 1:
            raise ValueError("reuse_factor must be >= 1")
        if self.reconfigurations < 0:
            raise ValueError("reconfigurations must be >= 0")

    @property
    def parallel_work_items_per_cycle(self) -> float:
        """Upper bound on work-items retired per cycle across the device."""
        if not self.pipelined and self.reuse_factor > 1:
            return self.lanes * self.vectorization / self.reuse_factor
        return float(self.lanes * self.vectorization)


def classify_design_point(point: DesignPoint) -> ConfigurationClass:
    """Map a design point onto the named configuration classes of Figure 5."""
    if point.reconfigurations > 0:
        return ConfigurationClass.C6
    if point.reuse_factor >= DesignPoint.INSTRUCTION_PROCESSOR_REUSE:
        if point.vectorization > 1 or point.lanes > 1:
            return ConfigurationClass.C5
        return ConfigurationClass.C4
    if point.pipelined:
        if point.lanes > 1 or point.vectorization > 1:
            return ConfigurationClass.C1
        return ConfigurationClass.C2
    # not pipelined
    if point.lanes > 1 or point.vectorization > 1:
        return ConfigurationClass.C3
    if point.reuse_factor > 1:
        return ConfigurationClass.C4
    return ConfigurationClass.C0
