"""Memory-hierarchy model (paper §III-2, Figure 4).

The TyTra flow adopts the OpenCL abstractions for the FPGA memory
hierarchy.  The number attached to each level is the address-space
identifier used in the TyTra-IR (``addrSpace(n)``):

======  ==========  =====================================
number  OpenCL      FPGA realisation
======  ==========  =====================================
0       private     pipeline registers
1       global      device DRAM (on-board memory)
2       local       on-chip block RAMs
3       constant    device DRAM, read-only, cacheable
======  ==========  =====================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

__all__ = ["AddressSpace", "MemoryLevel", "MemoryHierarchy"]


class AddressSpace(IntEnum):
    """OpenCL-style address-space identifiers used by the TyTra-IR."""

    PRIVATE = 0
    GLOBAL = 1
    LOCAL = 2
    CONSTANT = 3

    @property
    def is_on_chip(self) -> bool:
        """True for memories realised inside the FPGA fabric."""
        return self in (AddressSpace.PRIVATE, AddressSpace.LOCAL)

    @property
    def is_off_chip(self) -> bool:
        return not self.is_on_chip


@dataclass(frozen=True)
class MemoryLevel:
    """One level of the hierarchy with its capacity and nominal figures.

    Attributes
    ----------
    space:
        The address space this level realises.
    capacity_bytes:
        Usable capacity.  For ``PRIVATE`` this is the register budget of
        the device expressed in bytes.
    peak_bandwidth_gbps:
        Peak bandwidth to the consumer of this level in GB/s (datasheet
        figure; sustained bandwidth is modelled separately).
    latency_cycles:
        Nominal access latency in device clock cycles.
    """

    space: AddressSpace
    capacity_bytes: int
    peak_bandwidth_gbps: float
    latency_cycles: int = 1

    def fits(self, nbytes: int) -> bool:
        """Whether ``nbytes`` of data fit entirely within this level."""
        return nbytes <= self.capacity_bytes


@dataclass
class MemoryHierarchy:
    """The full hierarchy of a platform, indexable by address space."""

    levels: dict[AddressSpace, MemoryLevel] = field(default_factory=dict)
    #: Peak bandwidth of the host <-> device link (PCIe), GB/s.
    host_link_peak_gbps: float = 4.0

    def add(self, level: MemoryLevel) -> "MemoryHierarchy":
        self.levels[level.space] = level
        return self

    def __getitem__(self, space: AddressSpace | int) -> MemoryLevel:
        return self.levels[AddressSpace(space)]

    def __contains__(self, space: AddressSpace | int) -> bool:
        return AddressSpace(space) in self.levels

    @property
    def global_memory(self) -> MemoryLevel:
        return self[AddressSpace.GLOBAL]

    @property
    def local_memory(self) -> MemoryLevel:
        return self[AddressSpace.LOCAL]

    @property
    def private_memory(self) -> MemoryLevel:
        return self[AddressSpace.PRIVATE]

    def deepest_fitting(self, nbytes: int) -> MemoryLevel:
        """Return the fastest (most on-chip) level that can hold ``nbytes``.

        Order of preference: private, local, global.  Raises ``ValueError``
        when even global memory cannot hold the data (the host must then
        stream it — a form-A scenario).
        """
        for space in (AddressSpace.PRIVATE, AddressSpace.LOCAL, AddressSpace.GLOBAL):
            if space in self and self[space].fits(nbytes):
                return self[space]
        raise ValueError(
            f"no device memory level can hold {nbytes} bytes; data must remain host-resident"
        )

    @staticmethod
    def generic(
        dram_bytes: int = 8 << 30,
        bram_bytes: int = 6 << 20,
        register_bytes: int = 1 << 20,
        dram_peak_gbps: float = 9.6,
        bram_peak_gbps: float = 400.0,
        host_link_peak_gbps: float = 4.0,
    ) -> "MemoryHierarchy":
        """A representative PCIe FPGA accelerator card hierarchy."""
        h = MemoryHierarchy(host_link_peak_gbps=host_link_peak_gbps)
        h.add(MemoryLevel(AddressSpace.GLOBAL, dram_bytes, dram_peak_gbps, latency_cycles=200))
        h.add(MemoryLevel(AddressSpace.CONSTANT, dram_bytes, dram_peak_gbps, latency_cycles=200))
        h.add(MemoryLevel(AddressSpace.LOCAL, bram_bytes, bram_peak_gbps, latency_cycles=2))
        h.add(MemoryLevel(AddressSpace.PRIVATE, register_bytes, 10 * bram_peak_gbps, latency_cycles=1))
        return h
