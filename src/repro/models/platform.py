"""Platform model (paper §III-1, Figure 4).

The platform model maps OpenCL abstractions onto the FPGA architecture:

* the **compute device** is the FPGA;
* a **compute unit** is the unit of execution for a kernel and owns a
  stream-control block;
* a **processing element** is the custom datapath created for the kernel —
  one kernel pipeline lane — and may be replicated for thread parallelism;
* the **stream-control block** translates between random memory access and
  the pure streaming domain; it is transparent to the programmer and to
  the Compute-IR but is an integral part of the platform (and of the
  resource cost of a design).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.models.memory import MemoryHierarchy

__all__ = ["ProcessingElement", "StreamControl", "ComputeUnit", "PlatformModel"]


@dataclass
class ProcessingElement:
    """A kernel pipeline lane.

    Attributes
    ----------
    kernel:
        Name of the IR function realised by this PE.
    instructions:
        Number of datapath instructions (``NI`` in the throughput model).
    pipeline_depth:
        Depth of the pipeline in cycles (``KPD``).
    vectorization:
        Degree of vectorisation within the lane (``DV``).
    cycles_per_instruction:
        ``NTO`` — 1 for a fully pipelined datapath, >1 when functional
        units are re-used sequentially (C4/C5 style configurations).
    """

    kernel: str
    instructions: int = 0
    pipeline_depth: int = 0
    vectorization: int = 1
    cycles_per_instruction: int = 1

    def steady_state_items_per_cycle(self) -> float:
        """Work-items retired per cycle in steady state."""
        if self.instructions == 0:
            return float(self.vectorization)
        return self.vectorization / (self.cycles_per_instruction * self.instructions) \
            if self.cycles_per_instruction > 1 else float(self.vectorization)


@dataclass
class StreamControl:
    """The stream-control block of a compute unit.

    It owns the offset/delay buffers implied by stream-offset declarations
    and the address generators for each stream object.
    """

    input_streams: int = 0
    output_streams: int = 0
    #: Largest offset span that must be buffered before the first work-item
    #: can be processed (``Noff`` of the throughput model), in words.
    max_offset_span: int = 0
    #: Total bits of offset/delay buffering.
    buffer_bits: int = 0

    @property
    def total_streams(self) -> int:
        return self.input_streams + self.output_streams


@dataclass
class ComputeUnit:
    """The unit of execution for a kernel: replicated PEs + stream control."""

    name: str
    processing_elements: list[ProcessingElement] = field(default_factory=list)
    stream_control: StreamControl = field(default_factory=StreamControl)

    @property
    def lanes(self) -> int:
        """Number of parallel kernel lanes (``KNL``)."""
        return len(self.processing_elements)

    @property
    def pipeline_depth(self) -> int:
        """Depth of the deepest lane (fill time of the compute unit)."""
        return max((pe.pipeline_depth for pe in self.processing_elements), default=0)

    def add_lane(self, pe: ProcessingElement) -> ProcessingElement:
        self.processing_elements.append(pe)
        return pe


@dataclass
class PlatformModel:
    """Host + FPGA compute device.

    Attributes
    ----------
    device_name:
        Name of the FPGA device/board (for reporting only).
    compute_units:
        Compute units configured onto the device for the current design.
    memory:
        The device memory hierarchy.
    clock_mhz:
        Operating frequency of the device fabric (``FD``), MHz.
    """

    device_name: str = "generic-fpga"
    compute_units: list[ComputeUnit] = field(default_factory=list)
    memory: MemoryHierarchy = field(default_factory=MemoryHierarchy.generic)
    clock_mhz: float = 200.0

    @property
    def clock_hz(self) -> float:
        return self.clock_mhz * 1e6

    @property
    def total_lanes(self) -> int:
        return sum(cu.lanes for cu in self.compute_units)

    def add_compute_unit(self, cu: ComputeUnit) -> ComputeUnit:
        self.compute_units.append(cu)
        return cu
