"""Streaming data-pattern model (paper §III-6).

TyTra compute units work with streams of data; streaming from global
memory is equivalent to looping over an array.  Because the pattern of
index access has an order-of-magnitude impact on sustained bandwidth
(paper §V-C, Figure 10), the pattern is modelled explicitly so it can be
expressed in the IR and costed.

The prototype model considers contiguous access and strided access with
constant stride; the paper notes that fixed-stride and true random access
sustain essentially the same (low) bandwidth, so ``RANDOM`` is costed like
a large stride.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["PatternKind", "AccessPattern"]


class PatternKind(str, Enum):
    CONTIGUOUS = "contiguous"
    STRIDED = "strided"
    RANDOM = "random"


@dataclass(frozen=True)
class AccessPattern:
    """A stream's index-access pattern.

    Attributes
    ----------
    kind:
        Contiguous, constant-stride or random.
    stride_elements:
        Stride between consecutive accesses, in elements (1 for contiguous).
    element_bytes:
        Size of one element in bytes.
    """

    kind: PatternKind = PatternKind.CONTIGUOUS
    stride_elements: int = 1
    element_bytes: int = 4

    def __post_init__(self) -> None:
        if self.stride_elements < 1:
            raise ValueError("stride must be >= 1")
        if self.element_bytes < 1:
            raise ValueError("element size must be >= 1 byte")
        if self.kind is PatternKind.CONTIGUOUS and self.stride_elements != 1:
            raise ValueError("contiguous access must have stride 1")

    @property
    def stride_bytes(self) -> int:
        return self.stride_elements * self.element_bytes

    @property
    def is_contiguous(self) -> bool:
        return self.kind is PatternKind.CONTIGUOUS

    @staticmethod
    def contiguous(element_bytes: int = 4) -> "AccessPattern":
        return AccessPattern(PatternKind.CONTIGUOUS, 1, element_bytes)

    @staticmethod
    def strided(stride_elements: int, element_bytes: int = 4) -> "AccessPattern":
        if stride_elements == 1:
            return AccessPattern.contiguous(element_bytes)
        return AccessPattern(PatternKind.STRIDED, stride_elements, element_bytes)

    @staticmethod
    def random(element_bytes: int = 4, typical_span_elements: int = 1 << 20) -> "AccessPattern":
        """Random access: costed as a large-stride pattern (paper §V-C)."""
        return AccessPattern(PatternKind.RANDOM, max(2, typical_span_elements), element_bytes)

    @staticmethod
    def from_ir(pattern_kind: str, stride: int, element_bytes: int) -> "AccessPattern":
        """Construct from the Manage-IR (``CONT`` / ``STRIDED`` / ``RANDOM``)."""
        kind = pattern_kind.upper()
        if kind == "CONT" or kind == "CONTIGUOUS":
            return AccessPattern.contiguous(element_bytes)
        if kind == "STRIDED":
            return AccessPattern.strided(max(stride, 2), element_bytes)
        if kind == "RANDOM":
            return AccessPattern.random(element_bytes)
        raise ValueError(f"unknown access pattern kind {pattern_kind!r}")
