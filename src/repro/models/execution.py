"""Execution model (paper §III-3).

The execution model is adopted from the OpenCL standard: *kernel*,
*work-item*, *work-group*, *NDRange*, *global size* and *kernel instance*.
The **kernel instance** is of special interest because the paper's
throughput measure — EKIT, Effective Kernel-Instance Throughput — is
defined against it: a kernel instance is the combination of a kernel (the
function executed on the device) and the entire index space (NDRange) over
which it executes.  Executing a kernel instance means executing the kernel
for *all* work-items of the NDRange.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["NDRange", "WorkGroup", "KernelInstance"]


@dataclass(frozen=True)
class NDRange:
    """An index space of up to three dimensions."""

    dims: tuple[int, ...]

    def __post_init__(self) -> None:
        if not (1 <= len(self.dims) <= 3):
            raise ValueError("NDRange must have 1 to 3 dimensions")
        if any(d <= 0 for d in self.dims):
            raise ValueError("NDRange dimensions must be positive")

    @property
    def global_size(self) -> int:
        """Total number of work-items (``NGS`` in the throughput model)."""
        return math.prod(self.dims)

    @property
    def ndim(self) -> int:
        return len(self.dims)

    def reshape(self, new_dims: tuple[int, ...]) -> "NDRange":
        """Return an NDRange with the same global size and new shape."""
        new = NDRange(new_dims)
        if new.global_size != self.global_size:
            raise ValueError(
                f"cannot reshape NDRange of size {self.global_size} into {new_dims}"
            )
        return new

    @staticmethod
    def cube(side: int) -> "NDRange":
        """A convenience constructor for the im = jm = km grids of the paper."""
        return NDRange((side, side, side))

    def __str__(self) -> str:
        return "x".join(str(d) for d in self.dims)


@dataclass(frozen=True)
class WorkGroup:
    """A work-group: a tile of the NDRange executed together."""

    size: tuple[int, ...]

    @property
    def items(self) -> int:
        return math.prod(self.size)


@dataclass
class KernelInstance:
    """A kernel plus the full NDRange over which it executes.

    Attributes
    ----------
    kernel:
        Kernel (IR function / program) name.
    ndrange:
        The index space executed per kernel-instance.
    repetitions:
        ``NKI`` — how many times the kernel instance is executed over the
        course of the application (e.g. the ``nmaxp`` iterations of the SOR
        solver).
    words_per_item:
        ``NWPT`` — words moved per tuple per work-item, i.e. the number of
        stream words entering/leaving the PE for each work-item.
    """

    kernel: str
    ndrange: NDRange
    repetitions: int = 1
    words_per_item: int = 1
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError("repetitions (NKI) must be >= 1")
        if self.words_per_item < 1:
            raise ValueError("words_per_item (NWPT) must be >= 1")

    @property
    def global_size(self) -> int:
        return self.ndrange.global_size

    @property
    def total_work_items(self) -> int:
        """Work-items executed over the whole application run."""
        return self.global_size * self.repetitions

    def total_words(self) -> int:
        """Stream words moved per single kernel-instance execution."""
        return self.global_size * self.words_per_item

    def __str__(self) -> str:
        return (
            f"KernelInstance({self.kernel}, NDRange={self.ndrange}, "
            f"NKI={self.repetitions}, NWPT={self.words_per_item})"
        )
