"""Models of abstraction in the TyTra framework (paper §III).

The cost model reasons about designs through six structured abstractions,
largely adopted from the OpenCL standard where possible:

1. **Platform model** (:mod:`repro.models.platform`) — host, compute
   device, compute units, processing elements (kernel pipelines) and the
   stream-control block.
2. **Memory hierarchy model** (:mod:`repro.models.memory`) — global /
   constant (device DRAM), local (on-chip block RAM) and private
   (registers) memories with their OpenCL address-space numbers.
3. **Execution model** (:mod:`repro.models.execution`) — kernels,
   work-items, work-groups, NDRanges and the *kernel-instance* against
   which throughput (EKIT) is defined.
4. **Design-space model** (:mod:`repro.models.design_space`) — the C0–C6
   configuration classes of Figure 5 spanned by pipeline parallelism,
   thread parallelism and degree of re-use.
5. **Memory execution model** (:mod:`repro.models.memory_execution`) —
   forms A, B and C describing how data traverses the memory hierarchy
   across kernel-instance iterations (Figure 6).
6. **Streaming data-pattern model** (:mod:`repro.models.streaming`) —
   contiguous vs. strided access and its effect on sustained bandwidth.
"""

from repro.models.platform import ComputeUnit, PlatformModel, ProcessingElement, StreamControl
from repro.models.memory import AddressSpace, MemoryHierarchy, MemoryLevel
from repro.models.execution import KernelInstance, NDRange, WorkGroup
from repro.models.design_space import ConfigurationClass, DesignPoint, classify_design_point
from repro.models.memory_execution import MemoryExecutionForm, select_memory_execution_form
from repro.models.streaming import AccessPattern, PatternKind

__all__ = [
    "PlatformModel",
    "ComputeUnit",
    "ProcessingElement",
    "StreamControl",
    "AddressSpace",
    "MemoryLevel",
    "MemoryHierarchy",
    "NDRange",
    "WorkGroup",
    "KernelInstance",
    "ConfigurationClass",
    "DesignPoint",
    "classify_design_point",
    "MemoryExecutionForm",
    "select_memory_execution_form",
    "AccessPattern",
    "PatternKind",
]
