"""Memory-execution model (paper §III-5, Figure 6).

A host–device application can traverse the memory hierarchy in different
ways as multiple kernel instances are executed, and this strongly affects
performance, so the cost model distinguishes three forms:

* **Form A** — every kernel instance requires the full NDRange data set to
  be transported between the host and the device DRAM.  The host transfer
  cost is paid ``NKI`` times.
* **Form B** — data is moved to/from device global memory only once by the
  host; all kernel-instance iterations then stream from device DRAM.  The
  paper expects this to be the common case for real scientific
  applications.
* **Form C** — the NDRange data fits inside the device's local memory
  (on-chip block RAM); after an initial load, every iteration streams from
  on-chip memory and the execution is always compute bound.

The throughput expressions of the cost model (Equations 1-3) differ per
form; :func:`select_memory_execution_form` chooses the appropriate form
for a workload from its footprint and the device's memory capacities.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.models.memory import MemoryHierarchy

__all__ = ["MemoryExecutionForm", "select_memory_execution_form", "FormSelection"]


class MemoryExecutionForm(str, Enum):
    """The three memory-execution scenarios of Figure 6."""

    A = "A"
    B = "B"
    C = "C"

    @property
    def description(self) -> str:
        return {
            MemoryExecutionForm.A: (
                "host <-> device-DRAM transfer for every kernel instance"
            ),
            MemoryExecutionForm.B: (
                "single host transfer; kernel instances stream from device DRAM"
            ),
            MemoryExecutionForm.C: (
                "data resident in on-chip local memory; compute bound"
            ),
        }[self]

    @property
    def host_transfer_repetitions(self) -> str:
        """How often the host transfer cost is paid (documentation helper)."""
        return {"A": "every kernel instance", "B": "once", "C": "once"}[self.value]


@dataclass(frozen=True)
class FormSelection:
    """Outcome of form selection, with the reasoning captured for reports."""

    form: MemoryExecutionForm
    footprint_bytes: int
    reason: str


def select_memory_execution_form(
    footprint_bytes: int,
    memory: MemoryHierarchy,
    *,
    host_resident: bool = False,
    local_memory_reserved_fraction: float = 0.5,
) -> FormSelection:
    """Choose the memory-execution form for a workload.

    Parameters
    ----------
    footprint_bytes:
        Total bytes of the kernel-instance data set (all input and output
        arrays of the NDRange).
    memory:
        The device memory hierarchy.
    host_resident:
        Force form A — the application insists the data lives on the host
        between kernel instances (e.g. it is consumed/produced there every
        iteration).
    local_memory_reserved_fraction:
        Fraction of on-chip block RAM assumed unavailable to data (used by
        offset buffers, FIFOs and the HLS base platform), so form C is only
        selected when the data comfortably fits.
    """
    if footprint_bytes <= 0:
        raise ValueError("footprint_bytes must be positive")

    if host_resident:
        return FormSelection(
            MemoryExecutionForm.A,
            footprint_bytes,
            "data must return to the host after every kernel instance",
        )

    local = memory.local_memory
    usable_local = int(local.capacity_bytes * (1.0 - local_memory_reserved_fraction))
    if footprint_bytes <= usable_local:
        return FormSelection(
            MemoryExecutionForm.C,
            footprint_bytes,
            f"footprint fits in on-chip local memory ({footprint_bytes} <= {usable_local} B)",
        )

    global_mem = memory.global_memory
    if footprint_bytes <= global_mem.capacity_bytes:
        return FormSelection(
            MemoryExecutionForm.B,
            footprint_bytes,
            f"footprint fits in device DRAM ({footprint_bytes} <= {global_mem.capacity_bytes} B)",
        )

    return FormSelection(
        MemoryExecutionForm.A,
        footprint_bytes,
        "footprint exceeds device DRAM; data must be streamed from the host",
    )
