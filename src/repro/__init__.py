"""repro — a reproduction of the TyTra fast and accurate FPGA cost model.

This package reproduces, in pure Python, the system described in

    S. W. Nabi and W. Vanderbauwhede, "A Fast and Accurate Cost Model for
    FPGA Design Space Exploration in HPC Applications", IPDPSW 2016.

Layering (lower layers never import higher ones)::

    ir <- models <- substrate <- cost <- compiler <- functional <- kernels
       <- explore <- suite <- validate <- flows <- cli

Sub-packages
------------
``repro.ir``
    The TyTra intermediate representation (Manage-IR + Compute-IR).
``repro.models``
    The abstraction models of §III (platform, memory hierarchy, execution,
    design space, memory-execution forms, streaming patterns).
``repro.substrate``
    Simulated hardware substrates standing in for the vendor tools and
    boards used in the paper (synthesiser, DRAM/PCIe simulator, pipeline
    simulator, power model, CPU and HLS baselines).
``repro.cost``
    The paper's contribution: resource, bandwidth and EKIT throughput cost
    models, plus calibration.
``repro.compiler``
    The TyBEC back-end compiler: analysis, scheduling, costing and HDL
    code generation.  Costing runs through the staged, memoizing
    :class:`~repro.compiler.pipeline.EstimationPipeline`.
``repro.functional``
    The functional front end: sized vectors, ``map``/``fold`` programs and
    the ``reshapeTo`` type transformation that generates design variants.
``repro.kernels``
    The scientific-kernel registry (SOR, Hotspot, LavaMD, conv2d,
    Needleman-Wunsch, matmul: golden models + IR lowerings), extensible
    through the ``@register_kernel`` decorator.
``repro.explore``
    Design-space exploration drivers built on the cost model: multi-axis
    design spaces, the batched (serial / process-pool) exploration engine
    and the exhaustive, guided and Pareto search strategies.
``repro.suite``
    The workload suite: batch costing of every registered kernel,
    canonical version-stamped JSON reports, field-by-field diffing and
    the golden-report regression harness.
``repro.validate``
    Cross-validation of the analytic cost model against the substrate
    simulators: per-point agreement records, suite-level validation
    reports with their own goldens, surfaced as ``tybec suite validate``.
``repro.flows``
    RTL flow orchestration (xeda-style): declarative flows with managed
    run directories, artifact manifests and content-keyed caching over a
    pure-Python RTL backend (Verilog subset parser, structural netlist,
    cycle simulator) plus optional iverilog/verilator/yosys adapters —
    the generated HDL verified against the kernel Python references and
    the pipeline simulator, surfaced as ``tybec flow`` and
    ``tybec suite flow``.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
