"""The dense exploration backend: whole grids costed as numpy arrays.

``DenseBackend.explore_space`` lowers a :class:`DesignSpace` through
three steps:

1. **extract** — one scalar-pipeline analysis per (family, device)
   produces a :class:`~repro.cost.vector.FamilyVector`, the flat record
   of lane-invariant scalars (PE datapath usage, per-lane buffer usage,
   balancing bits, NWPT/Noff/KPD/NI/DV, word size);
2. **broadcast** — :func:`~repro.cost.vector.lane_axis` and
   :func:`~repro.cost.vector.evaluate_group` evaluate the lanes x clocks
   plane of every (device, form, pattern) group in one numpy pass,
   producing EKIT, breakdown-total, limiting-factor and feasibility
   arrays;
3. **materialize** — full :class:`~repro.explore.engine.SweepEntry`
   report objects are built *only* for the points a caller keeps
   (best, Pareto frontier, top-k, or an explicit ``materialize_all``),
   through the same scalar constructors the per-point oracle uses, so a
   materialized dense report is byte-identical to the scalar one.

Family vectors, lane axes and evaluated groups are all cached on the
backend keyed by content (kernel, grid, device, axes), so repeated
sweeps over the same family cost dictionary lookups — the same
O(families) philosophy the scalar caches follow, extended to whole
grids.

Designs that are not lane-separable (no family analysis) raise
:class:`~repro.cost.vector.DenseUnsupportedError`; the exploration
engine and the workload suite catch it and fall back to the scalar
per-point path.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.compiler.lanescale import LaneFamilyHandle, derive_structure
from repro.compiler.pipeline import (
    CompilationOptions,
    EstimationPipeline,
    FeasibilityStage,
    ResourceStage,
    ThroughputStage,
)
from repro.cost.report import CostReport
from repro.cost.resource_model import ResourceEstimator
from repro.cost.throughput import EKITParameters, estimate_throughput
from repro.cost.vector import (
    DenseUnsupportedError,
    FamilyVector,
    GroupArrays,
    LaneAxis,
    evaluate_group,
    lane_axis,
    pareto_mask,
)
from repro.explore.engine import (
    SerialBackend,
    SweepEntry,
    SweepResult,
    merge_stats,
    pareto_frontier,
)
from repro.explore.space import DenseGrid, DesignSpace, _form_value
from repro.obs.trace import span as trace_span
from repro.models.memory_execution import FormSelection
from repro.models.streaming import PatternKind
from repro.substrate.fpga_device import FPGADevice
from repro.substrate.synthesis import ResourceUsage

__all__ = ["DenseBackend", "DenseSweep", "extract_family_vector"]


def extract_family_vector(
    pipeline: EstimationPipeline, kernel, grid: tuple[int, ...], lanes: int
):
    """Lower one design family to its flat parameter record.

    Runs the scalar pipeline's analysis + resource stages once (for the
    given canonical lane count) and pulls out the lane-invariant scalars.
    Returns ``(family_vector, family, pe_usage)`` where ``pe_usage`` is
    the exact per-instance :class:`ResourceUsage` object the scalar path
    serialises, reused verbatim at materialization time.
    """
    handle = LaneFamilyHandle(kernel=kernel, lanes=lanes, grid=tuple(grid))
    variant = pipeline.analyze(handle)
    if variant.family is None:
        raise DenseUnsupportedError(
            f"design {handle.design_name!r} is not lane-separable (or lane "
            f"scaling is disabled); the dense path needs a family analysis"
        )
    family = variant.family
    estimate = pipeline.resources(variant)
    pe_usage = None
    for entry in estimate.functions:
        if entry.function == family.pe_name:
            pe_usage = entry.usage
            break
    if pe_usage is None:  # pragma: no cover - families always carry their PE
        raise DenseUnsupportedError(
            f"family {family.pe_name!r} has no PE usage in its resource estimate"
        )

    estimator = ResourceEstimator(pipeline.cost_db)
    buffers = ResourceUsage()
    for _, _, bits in family.offset_buffers:
        buffers += estimator._buffer_usage(bits)

    structure = variant.structure
    word_bytes = max(1, (structure.element_width + 7) // 8)
    fv = FamilyVector(
        kernel=kernel.name,
        device=pipeline.options.device.name,
        pe_name=family.pe_name,
        pe_usage=(pe_usage.alut, pe_usage.reg, pe_usage.bram_bits, pe_usage.dsp),
        buffer_usage=(buffers.alut, buffers.reg, buffers.bram_bits, buffers.dsp),
        balancing_bits=variant.balancing_register_bits,
        in_streams_per_lane=family.in_streams_per_lane,
        out_streams_per_lane=family.out_streams_per_lane,
        element_width=structure.element_width,
        word_bytes=word_bytes,
        nwpt=structure.words_per_item,
        noff=structure.max_offset_span_words,
        kpd=variant.pipeline_spec.pipeline_depth,
        ni=structure.instructions_per_pe,
        dv=variant.pipeline_spec.vectorization,
    )
    return fv, family, pe_usage


@dataclass
class _DeviceContext:
    """Per-device state of one dense sweep (family + lane-axis products).

    Contexts live inside cached :class:`DenseSweep` objects, which a
    coalescing consumer may materialize from several threads at once —
    the per-lane estimate memo is filled under its own lock.
    """

    device: FPGADevice
    pipeline: EstimationPipeline
    options: CompilationOptions
    fv: FamilyVector
    family: object
    pe_usage: ResourceUsage
    axis: LaneAxis
    resolved_clocks: list[float]
    _estimator: ResourceEstimator = None  # type: ignore[assignment]
    _estimates: dict = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False,
                                  compare=False)

    def resource_estimate(self, lanes: int):
        """The scalar ``ModuleResourceEstimate`` of one lane count (cached)."""
        with self._lock:
            cached = self._estimates.get(lanes)
            if cached is None:
                if self._estimator is None:
                    self._estimator = ResourceEstimator(self.pipeline.cost_db)
                structure = derive_structure(self.family, lanes)
                estimate = self._estimator.estimate_from_structure(
                    structure,
                    {self.fv.pe_name: self.pe_usage},
                    design=f"{self.fv.kernel}_l{lanes}",
                )
                estimate.total += ResourceUsage(reg=self.fv.balancing_bits * lanes)
                cached = self._estimates[lanes] = estimate
            return cached


@dataclass(frozen=True)
class _Group:
    """One evaluated (device, form, pattern) group of a dense sweep."""

    selection: FormSelection
    arrays: GroupArrays
    rho_h: float
    rho_g: float
    hpb_gbps: float
    gpb_gbps: float


class DenseSweep:
    """Array-valued results of one dense sweep over a design space.

    Selection (best, frontier, top-k, feasibility counts) runs on the
    arrays; :class:`~repro.explore.engine.SweepEntry` objects are only
    built for the points the caller keeps.  Flat indices follow the
    deterministic sweep order of :meth:`DesignSpace.points` (lanes,
    device, clock, form, pattern — slowest to fastest).
    """

    def __init__(
        self,
        grid: DenseGrid,
        workload,
        contexts: Sequence[_DeviceContext],
        groups: dict[tuple[int, int, int], _Group],
        wall_seconds: float,
        stats_cb: Callable[[], dict] | None = None,
    ):
        self.grid = grid
        self.workload = workload
        self._contexts = list(contexts)
        self._groups = groups
        self.wall_seconds = wall_seconds
        self._stats_cb = stats_cb

        shape = grid.shape
        n = int(np.prod(shape))
        ekit = np.zeros(shape, dtype=np.float64)
        feasible = np.zeros(shape, dtype=bool)
        limiting = np.zeros(shape, dtype=np.int64)
        util_max = np.zeros(shape, dtype=np.float64)
        for (di, fi, pi), group in groups.items():
            ekit[:, di, :, fi, pi] = group.arrays.ekit
            feasible[:, di, :, fi, pi] = group.arrays.feasible
            limiting[:, di, :, fi, pi] = group.arrays.limiting
        for di, ctx in enumerate(self._contexts):
            util_max[:, di, :, :, :] = ctx.axis.util_max[:, None, None, None]
        self.ekit = ekit.reshape(n)
        self.feasible = feasible.reshape(n)
        self.limiting = limiting.reshape(n)
        self.util_max = util_max.reshape(n)

    def _with_wall(self, wall_seconds: float) -> "DenseSweep":
        """A view of this sweep with fresh wall-clock accounting.

        The arrays, contexts and groups are shared (treat them as
        read-only); only the timing differs — what the backend's
        whole-sweep cache hands out on a hit.
        """
        clone = DenseSweep.__new__(DenseSweep)
        clone.__dict__.update(self.__dict__)
        clone.wall_seconds = wall_seconds
        return clone

    # -- scalar facts --------------------------------------------------
    @property
    def evaluated(self) -> int:
        return len(self.ekit)

    @property
    def feasible_count(self) -> int:
        return int(self.feasible.sum())

    @property
    def points_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.evaluated / self.wall_seconds

    @property
    def stats(self) -> dict:
        return self._stats_cb() if self._stats_cb is not None else {}

    # -- materialization ----------------------------------------------
    def _entry(self, flat: int) -> SweepEntry:
        li, di, ci, fi, pi = self.grid.coords(int(flat))
        ctx = self._contexts[di]
        group = self._groups[(di, fi, pi)]
        lanes = self.grid.lanes[li]
        point = self.grid.point(li, di, ci, fi, pi)

        params = EKITParameters.for_pipelined_design(
            hpb_gbps=group.hpb_gbps,
            rho_h=group.rho_h,
            gpb_gbps=group.gpb_gbps,
            rho_g=group.rho_g,
            ngs=self.workload.global_size,
            nwpt=ctx.fv.nwpt,
            nki=self.workload.repetitions,
            noff=ctx.fv.noff,
            kpd=ctx.fv.kpd,
            fd_mhz=ctx.resolved_clocks[ci],
            ni=ctx.fv.ni,
            knl=lanes,
            dv=ctx.fv.dv,
            initiation_interval=1.0,
            word_bytes=ctx.fv.word_bytes,
        )
        throughput = estimate_throughput(params, group.selection.form)
        estimate = ResourceStage._fresh_view(ctx.resource_estimate(lanes))
        feasibility = FeasibilityStage().run(
            estimate, params, group.selection.form, ctx.options
        )
        report = CostReport(
            design=f"{self.grid.kernel}_l{lanes}",
            device=ctx.device,
            resources=estimate,
            throughput=throughput,
            feasibility=feasibility,
            estimation_seconds=0.0,
            notes=[
                f"memory-execution form {group.selection.form.value}: "
                f"{group.selection.reason}"
            ],
        )
        return SweepEntry(point, report)

    def entries_at(self, indices) -> list[SweepEntry]:
        """Materialize the entries at the given flat sweep indices."""
        return [self._entry(i) for i in indices]

    def materialize_all(self) -> SweepResult:
        """Every point as a scalar-identical :class:`SweepResult`."""
        started = time.perf_counter()
        entries = self.entries_at(range(self.evaluated))
        wall = self.wall_seconds + (time.perf_counter() - started)
        return SweepResult(entries=entries, wall_seconds=wall, stats=self.stats)

    # -- selection -----------------------------------------------------
    def best(self) -> SweepEntry | None:
        """The fastest feasible design point (None when nothing fits)."""
        if self.evaluated == 0 or not self.feasible.any():
            return None
        masked = np.where(self.feasible, self.ekit, -np.inf)
        return self._entry(int(np.argmax(masked)))

    def top(self, k: int) -> list[SweepEntry]:
        """The ``k`` highest-EKIT feasible points (all points if none fit),
        ties broken by sweep order like the scalar ``max``."""
        if self.evaluated == 0 or k <= 0:
            return []
        idx = np.flatnonzero(self.feasible)
        if len(idx) == 0:
            idx = np.arange(self.evaluated)
        order = idx[np.argsort(-self.ekit[idx], kind="stable")][:k]
        return self.entries_at(order)

    def prune_indices(self, keep_fraction: float = 0.1,
                      keep_min: int = 1) -> list[int]:
        """Flat indices of the points a surrogate prune keeps.

        The dense backend as a *prune stage*: the top
        ``max(keep_min, ceil(keep_fraction * n))`` points by EKIT among
        the feasible ones (among all points when nothing fits, so a
        downstream scalar pass still sees the least-bad candidates).
        Returned in ascending sweep order, so survivors costed by a
        scalar backend break throughput ties exactly like the full
        sweep's ``max`` would.
        """
        if not 0 < keep_fraction <= 1:
            raise ValueError(
                f"keep_fraction must be in (0, 1], got {keep_fraction}")
        if self.evaluated == 0:
            return []
        keep = min(self.evaluated,
                   max(int(keep_min), math.ceil(keep_fraction * self.evaluated)))
        idx = np.flatnonzero(self.feasible)
        if len(idx) == 0:
            idx = np.arange(self.evaluated)
        order = idx[np.argsort(-self.ekit[idx], kind="stable")][:keep]
        return sorted(int(i) for i in order)

    def pareto_frontier(
        self,
        objectives=None,
        *,
        include_infeasible: bool = False,
    ) -> list[SweepEntry]:
        """The non-dominated subset, materialized in sweep order.

        The default objectives (EKIT maximised, limiting-resource
        utilisation minimised) are evaluated directly on the arrays;
        custom objective callables force materialization of the candidate
        entries first.
        """
        if self.evaluated == 0:
            return []
        idx = np.arange(self.evaluated) if include_infeasible \
            else np.flatnonzero(self.feasible)
        if len(idx) == 0:
            return []
        if objectives is not None:
            return pareto_frontier(self.entries_at(idx), objectives)
        scores = np.column_stack((self.ekit[idx], -self.util_max[idx]))
        return self.entries_at(idx[pareto_mask(scores)])


class DenseBackend:
    """Evaluate whole design spaces as broadcast numpy grids.

    Plugs into :class:`~repro.explore.engine.ExplorationEngine` beside
    the serial and process-pool backends.  ``explore_space`` is the dense
    entry point; ``run`` falls back to an internal serial backend so the
    engine can still hand this backend arbitrary per-point job batches
    (e.g. after a :class:`DenseUnsupportedError`).

    All caches are content-keyed and live for the backend's lifetime:
    repeated sweeps over the same family reduce to dictionary lookups
    plus array reshapes.

    The backend is reentrant: every cache layer (pipelines, vectors,
    axes, groups, whole sweeps) and every counter is guarded by one lock,
    taken only around lookups and publications — the numpy evaluation
    itself runs outside it, so concurrent sweeps over *different*
    families still overlap.  Two threads racing to fill the same entry
    both compute it (the stages are deterministic, so the results are
    interchangeable) and the first publication wins.
    """

    #: evaluated-group cache entries kept before the cache is reset
    MAX_CACHED_GROUPS = 1024
    #: whole-sweep cache entries kept before the cache is reset
    MAX_CACHED_SWEEPS = 64
    #: sweeps above this point count are not whole-sweep cached (their
    #: arrays are large; the group cache still makes repeats cheap)
    MAX_CACHED_SWEEP_POINTS = 65536

    def __init__(self):
        self._serial = SerialBackend()
        self._pipelines: dict[str, EstimationPipeline] = {}
        self._vectors: dict = {}
        self._axes: dict = {}
        self._groups: dict = {}
        self._sweeps: dict = {}
        self._throughput = ThroughputStage()
        self._lock = threading.RLock()
        self.counters = {
            "sweeps": 0,
            "points": 0,
            "vector": [0, 0],  # [hits, misses]
            "group": [0, 0],
            "sweep": [0, 0],
        }

    def _count(self, counter: str, slot: int | None = None, n: int = 1) -> None:
        with self._lock:
            if slot is None:
                self.counters[counter] += n
            else:
                self.counters[counter][slot] += n

    # -- cache layers --------------------------------------------------
    def pipeline_for(self, device: FPGADevice) -> EstimationPipeline:
        with self._lock:
            pipeline = self._pipelines.get(device.name)
            if pipeline is None:
                pipeline = EstimationPipeline(CompilationOptions(device=device))
                self._pipelines[device.name] = pipeline
            return pipeline

    def _vector_for(self, kernel, grid: tuple[int, ...], device: FPGADevice,
                    canonical_lanes: int):
        key = (kernel.name, grid, device.name)
        with self._lock:
            cached = self._vectors.get(key)
        if cached is not None:
            self._count("vector", 0)
            return cached
        self._count("vector", 1)
        pipeline = self.pipeline_for(device)
        computed = extract_family_vector(pipeline, kernel, grid, canonical_lanes)
        with self._lock:
            return self._vectors.setdefault(key, computed)

    def _axis_for(self, fv: FamilyVector, lanes: tuple[int, ...],
                  device: FPGADevice) -> LaneAxis:
        key = (fv.kernel, fv.device, lanes)
        with self._lock:
            axis = self._axes.get(key)
        if axis is None:
            axis = lane_axis(fv, lanes, device.resource_capacities())
            with self._lock:
                axis = self._axes.setdefault(key, axis)
        return axis

    @staticmethod
    def _space_key(space: DesignSpace) -> tuple:
        """A content key of a design space, cheap enough for the hot path.

        ``lanes=None`` spaces key on ``max_lanes`` instead of enumerating
        the valid lane counts — the enumeration is itself a per-sweep cost
        a cache hit must not pay.
        """
        lanes = ("explicit", tuple(space.lanes)) if space.lanes is not None \
            else ("max", space.max_lanes)
        return (
            space.kernel.name,
            tuple(space.grid),
            space.iterations,
            lanes,
            tuple(d.name for d in space.devices),
            tuple(space.clocks_mhz),
            tuple(_form_value(f) for f in space.forms),
            tuple(PatternKind(p).value for p in space.patterns),
        )

    # -- the dense lowering -------------------------------------------
    def explore_space(self, space: DesignSpace) -> DenseSweep:
        """Evaluate every point of ``space`` in one broadcast pass."""
        started = time.perf_counter()
        space_key = self._space_key(space)
        with self._lock:
            cached = self._sweeps.get(space_key)
        if cached is not None:
            self._count("sweep", 0)
            self._count("sweeps")
            self._count("points", n=cached.evaluated)
            return cached._with_wall(time.perf_counter() - started)
        self._count("sweep", 1)

        grid = DenseGrid.from_space(space)
        kernel = space.kernel
        workload = kernel.workload(tuple(space.grid), space.iterations)
        self._count("sweeps")
        self._count("points", n=len(grid))

        contexts: list[_DeviceContext] = []
        groups: dict[tuple[int, int, int], _Group] = {}
        with trace_span("backend.dense.sweep", kernel=kernel.name,
                        points=len(grid)):
            if grid.lanes:
                for di, device in enumerate(grid.devices):
                    ctx = self._context(kernel, grid, device)
                    contexts.append(ctx)
                    self._evaluate_groups(ctx, di, grid, workload, groups)
        wall = time.perf_counter() - started
        sweep = DenseSweep(grid, workload, contexts, groups, wall,
                           stats_cb=self.collect_stats)
        if len(grid) <= self.MAX_CACHED_SWEEP_POINTS:
            with self._lock:
                if len(self._sweeps) >= self.MAX_CACHED_SWEEPS:
                    self._sweeps.clear()
                sweep = self._sweeps.setdefault(space_key, sweep)
        return sweep

    def _context(self, kernel, grid: DenseGrid, device: FPGADevice) -> _DeviceContext:
        fv, family, pe_usage = self._vector_for(
            kernel, grid.grid, device, grid.lanes[0]
        )
        return _DeviceContext(
            device=device,
            pipeline=self.pipeline_for(device),
            options=self.pipeline_for(device).options,
            fv=fv,
            family=family,
            pe_usage=pe_usage,
            axis=self._axis_for(fv, grid.lanes, device),
            resolved_clocks=grid.resolved_clocks(device),
        )

    def _evaluate_groups(self, ctx: _DeviceContext, di: int, grid: DenseGrid,
                         workload, groups: dict) -> None:
        with self._lock:
            if len(self._groups) > self.MAX_CACHED_GROUPS:
                self._groups.clear()
        fv = ctx.fv
        footprint = workload.global_size * fv.nwpt * fv.word_bytes
        calibration = ctx.pipeline.calibrate()
        host, dram = calibration.host_bandwidth, calibration.dram_bandwidth
        lanes = np.asarray(grid.lanes, dtype=np.int64)
        clocks = np.asarray(ctx.resolved_clocks, dtype=np.float64)
        clocks_key = tuple(ctx.resolved_clocks)

        for fi, form_opt in enumerate(grid.forms):
            form_value = _form_value(form_opt)
            for pi, pattern in enumerate(grid.patterns):
                key = (fv.kernel, grid.grid, workload.repetitions, fv.device,
                       grid.lanes, clocks_key, form_value, pattern.value)
                with self._lock:
                    cached = self._groups.get(key)
                if cached is None:
                    self._count("group", 1)
                    options = CompilationOptions(device=ctx.device, form=form_value)
                    selection = self._throughput.select_form(footprint, options)
                    rho_h = host.rho(footprint)
                    rho_g = dram.rho(footprint, pattern)
                    arrays = evaluate_group(
                        fv, lanes, clocks,
                        form=selection.form,
                        ngs=workload.global_size,
                        nki=workload.repetitions,
                        hpb_gbps=host.peak_gbps,
                        rho_h=rho_h,
                        gpb_gbps=dram.peak_gbps,
                        rho_g=rho_g,
                        fits_resources=ctx.axis.fits_resources,
                    )
                    cached = _Group(
                        selection=selection,
                        arrays=arrays,
                        rho_h=rho_h,
                        rho_g=rho_g,
                        hpb_gbps=host.peak_gbps,
                        gpb_gbps=dram.peak_gbps,
                    )
                    with self._lock:
                        cached = self._groups.setdefault(key, cached)
                else:
                    self._count("group", 0)
                groups[(di, fi, pi)] = cached

    # -- the generic backend protocol ---------------------------------
    def run(self, jobs, deadline=None) -> list[CostReport]:
        """Scalar fallback: cost a per-point job batch serially."""
        return self._serial.run(jobs, deadline=deadline)

    def collect_stats(self) -> dict:
        """Dense counters merged with the per-session pipeline statistics.

        Counters are cumulative over the backend's lifetime, matching the
        serial backend's semantics.
        """
        with self._lock:
            pipelines = list(self._pipelines.values())
            dense = {
                "sweeps": self.counters["sweeps"],
                "points": self.counters["points"],
                "vector": list(self.counters["vector"]),
                "group": list(self.counters["group"]),
            }
        payloads = [p.stats.as_dict() for p in pipelines]
        payloads.append(self._serial.collect_stats())
        merged = merge_stats(payloads)
        merged["dense"] = dense
        return merged
