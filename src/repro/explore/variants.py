"""Variant generation for design-space exploration.

A *variant family* is the set of designs produced by applying the
``reshapeTo`` type transformation with different lane counts to a kernel's
baseline program — exactly what the paper sweeps in Figure 15 (1 to 16
lanes of the SOR pipeline).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.functional.typetrans import valid_lane_counts
from repro.ir.functions import Module
from repro.kernels.base import ScientificKernel
from repro.models.execution import KernelInstance

__all__ = ["VariantRecord", "generate_lane_variants", "sweep_lane_counts"]


@dataclass
class VariantRecord:
    """One generated design variant, ready to be costed."""

    kernel: str
    lanes: int
    module: Module
    workload: KernelInstance

    @property
    def name(self) -> str:
        return self.module.name


def sweep_lane_counts(
    kernel: ScientificKernel,
    grid: tuple[int, ...] | None = None,
    max_lanes: int = 16,
    lane_counts: list[int] | None = None,
) -> list[int]:
    """The lane counts to explore for a kernel on a given grid.

    Only counts for which the order-preserving reshape is defined (divisors
    of the NDRange size) are returned.
    """
    grid = grid or kernel.default_grid
    size = math.prod(grid)
    if lane_counts is not None:
        return [l for l in lane_counts if l > 0 and size % l == 0]
    return valid_lane_counts(size, max_lanes=max_lanes)


def generate_lane_variants(
    kernel: ScientificKernel,
    grid: tuple[int, ...] | None = None,
    iterations: int | None = None,
    max_lanes: int = 16,
    lane_counts: list[int] | None = None,
) -> list[VariantRecord]:
    """Generate the lane-variant family of a kernel as TyTra-IR modules."""
    grid = grid or kernel.default_grid
    counts = sweep_lane_counts(kernel, grid, max_lanes, lane_counts)
    workload = kernel.workload(grid, iterations)
    records = []
    for lanes in counts:
        module = kernel.build_module(lanes=lanes, grid=grid)
        records.append(
            VariantRecord(kernel=kernel.name, lanes=lanes, module=module, workload=workload)
        )
    return records
