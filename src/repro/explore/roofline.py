"""Roofline-style view of design variants.

The paper points to the roofline extension for FPGAs (da Silva et al.) as
a more useful representation of its cost model's outputs.  This module
provides that view: for every costed variant it computes the operational
intensity (operations per byte moved from the limiting memory interface)
and the attainable performance, so variants can be placed against the
bandwidth roof and the compute roof of the target device.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.report import CostReport

__all__ = ["RooflinePoint", "roofline_analysis"]


@dataclass(frozen=True)
class RooflinePoint:
    """One variant placed in the roofline plane."""

    design: str
    lanes: int
    operational_intensity: float      # operations per byte
    attainable_gops: float            # operations per second the model predicts / 1e9
    compute_roof_gops: float
    bandwidth_roof_gops: float
    bound: str                        # 'compute' or 'memory'

    def as_dict(self) -> dict:
        return {
            "design": self.design,
            "lanes": self.lanes,
            "operational_intensity": self.operational_intensity,
            "attainable_gops": self.attainable_gops,
            "compute_roof_gops": self.compute_roof_gops,
            "bandwidth_roof_gops": self.bandwidth_roof_gops,
            "bound": self.bound,
        }


def roofline_analysis(
    reports: dict[int, CostReport],
    ops_per_item: float,
) -> list[RooflinePoint]:
    """Place every costed variant in the roofline plane.

    Parameters
    ----------
    reports:
        Cost reports keyed by lane count (e.g. from an exploration result).
    ops_per_item:
        Arithmetic operations per work-item of the kernel.
    """
    points: list[RooflinePoint] = []
    for lanes in sorted(reports):
        report = reports[lanes]
        params = report.throughput.parameters
        bytes_per_item = params.nwpt * params.word_bytes
        intensity = ops_per_item / bytes_per_item

        # compute roof: every lane retires one item per cycle
        compute_roof = params.knl * params.dv * params.fd_hz * ops_per_item / 1e9
        # bandwidth roof: sustained DRAM bandwidth converted to op/s via intensity
        bandwidth_roof = params.sustained_dram_gbps * 1e9 * intensity / 1e9

        items_per_second = report.throughput.ekit * params.ngs
        attainable = items_per_second * ops_per_item / 1e9
        points.append(
            RooflinePoint(
                design=report.design,
                lanes=lanes,
                operational_intensity=intensity,
                attainable_gops=attainable,
                compute_roof_gops=compute_roof,
                bandwidth_roof_gops=bandwidth_roof,
                bound="compute" if compute_roof <= bandwidth_roof else "memory",
            )
        )
    return points
