"""The multi-axis exploration engine: batched, parallel variant costing.

The cost model's speed is the paper's whole point — ~0.3 s per variant
against ~70 s for an HLS estimate — and this engine turns that speed into
scale: a :class:`DesignSpace` of thousands of points is lowered into
:class:`CostJob` batches and evaluated through a pluggable backend,

``SerialBackend``
    In-process evaluation; one memoizing
    :class:`~repro.compiler.pipeline.EstimationPipeline` per estimation
    session (option set), shared across all points of that session.
``ProcessPoolBackend``
    ``concurrent.futures.ProcessPoolExecutor`` fan-out.  Jobs are grouped
    by estimation session, split into per-worker batches and shipped as
    pickled (options, jobs) payloads; every stage of the pipeline is
    deterministic (the synthetic synthesiser derives its "tool noise" from
    sha256, not from salted ``hash()``), so the reports are identical to
    the serial backend's, byte for byte, modulo wall-clock timing.

Both backends are fault tolerant.  The pool backend survives worker
death (``BrokenProcessPool``): completed batches keep their results,
failed batches are requeued to a respawned pool under the backend's
:class:`~repro.resilience.RetryPolicy`, and — because every batch is a
deterministic function of its payload — the final report is
byte-identical to a fault-free run.  The serial backend retries
transient per-job failures in place.  Both honour an optional
:class:`~repro.resilience.Deadline` between design points.

Results come back as a :class:`SweepResult`: reports in deterministic
sweep order plus the selection helpers exploration strategies build on
(best-feasible, Pareto frontier, summary tables, variants/second).
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.compiler.pipeline import (
    CompilationOptions,
    EstimationPipeline,
    adopt_shared_calibration,
)
from repro.cost.cache import env_int
from repro.cost.report import CostReport
from repro.explore.space import CostJob, DesignPoint, DesignSpace
from repro.obs.trace import (
    WORKER_SPANS_KEY,
    Tracer,
    current_tracer,
    install_tracer,
    span as trace_span,
    uninstall_tracer,
    worker_trace_context,
)
from repro.resilience import (
    COUNTERS,
    Deadline,
    RetryBudgetExceededError,
    RetryPolicy,
    is_transient,
    maybe_fail,
    register_transient,
)

# a dead pool is the canonical transient failure: the work is fine, the
# substrate died under it
register_transient(BrokenProcessPool)

__all__ = [
    "SerialBackend",
    "ProcessPoolBackend",
    "ExplorationEngine",
    "SweepEntry",
    "SweepResult",
    "canonical_report_dict",
    "merge_stats",
    "pareto_frontier",
]


def merge_stats(payloads: Sequence[dict | None]) -> dict:
    """Merge pipeline-stat payloads by summing numeric leaves.

    Counter pairs (``[hits, misses]``) sum element-wise, nested dicts
    (``stage_seconds``) merge recursively — the shape every backend's
    aggregated statistics share, whether the pipelines ran in-process or
    behind a pickle boundary.
    """
    merged: dict = {}
    for payload in payloads:
        if not payload:
            continue
        for key, value in payload.items():
            if isinstance(value, dict):
                merged[key] = merge_stats([merged.get(key), value]) \
                    if key in merged else dict(value)
            elif isinstance(value, list):
                current = merged.setdefault(key, [0] * len(value))
                for i, item in enumerate(value):
                    current[i] += item
            elif isinstance(value, (int, float)):
                merged[key] = merged.get(key, 0) + value
            else:
                merged[key] = value
    return merged


def canonical_report_dict(report: CostReport) -> dict:
    """A report as a dict without its wall-clock estimation time.

    Two backends costing the same design point produce identical canonical
    dicts; only ``estimation_seconds`` (and the measurement it encodes)
    depends on where and when the estimation ran.
    """
    payload = report.as_dict()
    payload.pop("estimation_seconds", None)
    return payload


# ----------------------------------------------------------------------
# Evaluation backends
# ----------------------------------------------------------------------


def _session_group_key(job: CostJob) -> tuple:
    """Group jobs that can share one estimation session (one pipeline).

    Jobs with explicit options group by the options object's identity —
    the caller vouches those jobs belong to one session (and injected
    models, custom noise or latency models are honoured as-is).  Jobs
    described purely by their design point group by the
    :meth:`~repro.compiler.pipeline.CompilationOptions.session_key` of
    the options the point implies; such options are freshly derived (no
    injected models yet), so the key carries no object identities and is
    stable across job boundaries.
    """
    if job.options is not None:
        return ("options", id(job.options))
    return ("point",) + job.point.compilation_options().session_key()


class SerialBackend:
    """Evaluate jobs in-process, one memoizing pipeline per session.

    Safe to share across threads: the session-pipeline registry is
    created under a lock (one winner per session, concurrent losers adopt
    it), and everything a shared pipeline touches — stage caches, the
    process-wide calibration/family stores, the stats counters — is
    individually locked.  Concurrent sweeps through one backend therefore
    share each other's warm state instead of corrupting it.
    """

    def __init__(self, pipeline: EstimationPipeline | None = None):
        self._pipelines: dict[tuple, EstimationPipeline] = {}
        self._lock = threading.Lock()
        if pipeline is not None:
            self._pipelines[("options", id(pipeline.options))] = pipeline

    def pipeline_for(self, job: CostJob) -> EstimationPipeline:
        key = _session_group_key(job)
        with self._lock:
            pipeline = self._pipelines.get(key)
            if pipeline is None:
                pipeline = self._pipelines[key] = EstimationPipeline(job.resolved_options())
            return pipeline

    #: per-job retry budget for transient failures (injected faults, a
    #: flaky cache substrate); real estimation errors are deterministic
    #: and classified permanent, so they propagate on the first attempt
    retry_policy: RetryPolicy = RetryPolicy(max_attempts=4, base_delay=0.01,
                                            max_delay=0.25)

    def run(
        self,
        jobs: Sequence[CostJob],
        progress: Callable[[int, CostReport], None] | None = None,
        deadline: Deadline | None = None,
    ) -> list[CostReport]:
        """Cost ``jobs`` in order; ``progress(index, report)`` fires per point.

        The callback is what lets a long-lived consumer (the exploration
        service) stream results while the batch is still running.
        ``deadline`` is checked between points (and before each retry);
        transient per-job failures retry under :attr:`retry_policy`.
        """
        with trace_span("backend.serial.batch", jobs=len(jobs)):
            return self._run(jobs, progress, deadline)

    def _run(
        self,
        jobs: Sequence[CostJob],
        progress: Callable[[int, CostReport], None] | None,
        deadline: Deadline | None,
    ) -> list[CostReport]:
        reports = []
        for index, job in enumerate(jobs):
            if deadline is not None:
                deadline.check(f"design point {index}/{len(jobs)}")
            pipeline = self.pipeline_for(job)

            def _cost(attempt: int, job=job, pipeline=pipeline):
                maybe_fail("worker", salt=attempt)
                return pipeline.cost(job.module, job.workload, job.point.pattern)

            report = self.retry_policy.call(
                _cost, key=f"serial:{index}", what=f"costing {job.point.label}",
                deadline=deadline)
            reports.append(report)
            if progress is not None:
                progress(index, report)
        return reports

    def collect_stats(self) -> dict:
        """Aggregated cache/timing statistics over every session pipeline.

        Counters are cumulative over the backend's lifetime (a backend
        reused across sweeps keeps counting), which is what a long-running
        exploration loop wants to watch.
        """
        with self._lock:
            pipelines = list(self._pipelines.values())
        return merge_stats([p.stats.as_dict() for p in pipelines])


def _evaluate_batch(payload) -> tuple[list[tuple[int, CostReport]], dict]:
    """Worker entry point: cost one batch of same-session jobs.

    Each batch gets a fresh pipeline (the batch *is* the session on this
    side of the pickle boundary, and sharing pipelines across batches
    could mix up differently-injected calibration models); the expensive
    per-device calibration artifacts arrive pre-resolved inside the
    pickled options (see :meth:`ProcessPoolBackend._payloads`), are
    shared process-wide, and warm-start from the persistent store
    otherwise.  The worker ships its cache statistics back alongside the
    reports so the parent can aggregate a sweep-wide picture — and, when
    the parent is tracing, its spans ride the same channel under
    :data:`WORKER_SPANS_KEY` (workers never touch the trace file).
    """
    options, batch, shared_default, *rest = payload
    epoch = rest[0] if rest else 0
    trace_ctx = rest[1] if len(rest) > 1 else None
    # the fault-injection site for "this worker invocation dies": salted
    # with the requeue epoch so a respawned pool (whose fresh processes
    # restart the plan's call counters) draws a *different* schedule and
    # the retry loop converges instead of crashing identically forever
    maybe_fail("worker", salt=epoch)
    if shared_default:
        # the shipped models came from the shared default calibration:
        # seed this worker's process-wide caches so they are recognised
        # as shared (enabling the cross-session resource/family caches)
        adopt_shared_calibration(options)
    worker_tracer = None
    if trace_ctx is not None:
        # collect-only tracer rooted under the parent's pool-batch span
        worker_tracer = install_tracer(
            Tracer(trace_id=trace_ctx[0], collect=True, root_parent=trace_ctx[1])
        )
    try:
        pipeline = EstimationPipeline(options)
        results = []
        with trace_span("worker.batch", points=len(batch), epoch=epoch):
            for index, module, workload, pattern in batch:
                results.append((index, pipeline.cost(module, workload, pattern)))
    finally:
        if worker_tracer is not None:
            uninstall_tracer()
    stats = pipeline.stats.as_dict()
    if worker_tracer is not None:
        spans = worker_tracer.drain()
        if spans:
            stats[WORKER_SPANS_KEY] = spans
    return results, stats


class ProcessPoolBackend:
    """Evaluate jobs on a :class:`ProcessPoolExecutor`.

    Jobs are grouped by estimation session and each group's options are
    calibrated *in the parent* before pickling — the resolved cost
    database and bandwidth models travel inside the payload, so workers
    never re-run device calibration the parent (or any earlier sweep in
    the process) already paid for.  Groups are split into
    ``batches_per_worker`` chunks to keep all workers busy; report order
    matches the input job order exactly.

    Worker death does not abort the sweep.  When a batch fails
    transiently — the pool broke under it, or a worker raised an
    injected/transient fault — its results are discarded, every batch
    that *did* complete keeps its reports, and the failed batches are
    requeued (to a freshly spawned pool if the old one broke) until they
    complete or ``retry_policy`` runs out of attempts.  Each batch is a
    deterministic function of its payload, so a report computed on the
    third attempt is byte-identical to one computed on the first.
    """

    def __init__(self, max_workers: int | None = None, batches_per_worker: int = 2,
                 retry_policy: RetryPolicy | None = None):
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)
        self.batches_per_worker = max(1, batches_per_worker)
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=env_int("TYBEC_POOL_ATTEMPTS", 8),
            base_delay=0.02, max_delay=0.5)
        self._last_stats: dict = {}

    def _payloads(self, jobs: Sequence[CostJob]) -> list[tuple]:
        groups: dict[tuple, tuple[CompilationOptions, list]] = {}
        for index, job in enumerate(jobs):
            key = _session_group_key(job)
            if key not in groups:
                groups[key] = (job.resolved_options(), [])
            groups[key][1].append((index, job.module, job.workload, job.point.pattern))

        payloads = []
        target_batches = self.max_workers * self.batches_per_worker
        for options, entries in groups.values():
            # resolve the one-time per-device artifacts here, once, so the
            # pickled options carry them to every worker (the workers'
            # cold-start calibration cost used to multiply per process)
            shared_default = EstimationPipeline(options).calibrate().shared_cost_db
            batches = min(len(entries), max(1, target_batches // len(groups)))
            size = (len(entries) + batches - 1) // batches
            for start in range(0, len(entries), size):
                payloads.append((options, entries[start : start + size],
                                 shared_default))
        return payloads

    def run(self, jobs: Sequence[CostJob],
            deadline: Deadline | None = None) -> list[CostReport]:
        if not jobs:
            self._last_stats = {}
            return []
        with trace_span("backend.pool.batch", jobs=len(jobs),
                        workers=self.max_workers) as pool_span:
            return self._run(jobs, deadline, pool_span)

    def _run(self, jobs: Sequence[CostJob], deadline: Deadline | None,
             pool_span) -> list[CostReport]:
        trace_ctx = worker_trace_context(pool_span)
        payloads = self._payloads(jobs)
        reports: list[CostReport | None] = [None] * len(jobs)
        worker_stats: list[dict] = []
        resilience = {"attempts": 0, "requeued_batches": 0, "pool_respawns": 0}

        pending = list(range(len(payloads)))
        policy = self.retry_policy
        last_error: BaseException | None = None
        for epoch in policy.attempts():
            resilience["attempts"] = epoch + 1
            if epoch > 0:
                resilience["pool_respawns"] += 1
                COUNTERS.bump("pool.respawns")
            failed: list[int] = []
            executor = ProcessPoolExecutor(max_workers=self.max_workers)
            try:
                futures = {
                    executor.submit(
                        _evaluate_batch, (*payloads[i], epoch, trace_ctx)
                    ): i
                    for i in pending
                }
                remaining = set(futures)
                while remaining:
                    if deadline is not None and deadline.expired:
                        deadline.check("pool sweep")
                    done, remaining = wait(
                        remaining, timeout=None if deadline is None
                        else max(0.05, min(1.0, deadline.remaining())),
                        return_when=FIRST_COMPLETED)
                    for future in done:
                        index = futures[future]
                        try:
                            batch_results, stats = future.result()
                        except BaseException as exc:  # noqa: BLE001
                            if not is_transient(exc):
                                raise
                            # the batch is lost but its work is not: the
                            # payload is requeued verbatim (plus a new
                            # epoch salt) and recomputes deterministically
                            failed.append(index)
                            last_error = exc
                            continue
                        spans = stats.pop(WORKER_SPANS_KEY, None)
                        if spans:
                            # worker spans ride home with the stats; strip
                            # them before merge_stats (which sums numeric
                            # leaves) and re-emit into the parent's trace
                            tracer = current_tracer()
                            if tracer is not None:
                                tracer.emit_foreign(spans)
                        worker_stats.append(stats)
                        for job_index, report in batch_results:
                            reports[job_index] = report
            finally:
                # a broken pool cannot be reused; tearing it down is what
                # lets the next epoch spawn a healthy one
                executor.shutdown(wait=False, cancel_futures=True)
            if not failed:
                pending = []
                break
            COUNTERS.bump("pool.requeued_batches", len(failed))
            resilience["requeued_batches"] += len(failed)
            pending = sorted(failed)
            if epoch == policy.max_attempts - 1:
                break
            pause = policy.delay(epoch, key="pool")
            if deadline is not None:
                deadline.check("pool sweep")
                pause = min(pause, deadline.remaining())
            if pause > 0:
                time.sleep(pause)
        if pending:
            assert last_error is not None
            raise RetryBudgetExceededError(
                f"pool sweep ({len(pending)} batch(es) of {len(payloads)})",
                policy.max_attempts, last_error) from last_error
        self._last_stats = merge_stats(worker_stats)
        self._last_stats["resilience"] = resilience
        return reports  # type: ignore[return-value]

    def collect_stats(self) -> dict:
        """Aggregated worker statistics of the most recent :meth:`run`."""
        return dict(self._last_stats)


# ----------------------------------------------------------------------
# Sweep results
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SweepEntry:
    """One evaluated design point."""

    point: DesignPoint
    report: CostReport

    def as_dict(self) -> dict:
        return {"point": self.point.as_dict(), "report": canonical_report_dict(self.report)}


def pareto_frontier(
    entries: Sequence[SweepEntry],
    objectives: Sequence[Callable[[SweepEntry], float]] | None = None,
) -> list[SweepEntry]:
    """The non-dominated subset of ``entries``, in input order.

    ``objectives`` are callables whose values are *maximised*; negate a
    value to minimise it.  The default trades throughput (EKIT, maximised)
    against the limiting resource utilisation (minimised) — the classic
    performance/area frontier of a variant sweep.

    Dominance runs through the vectorized :func:`repro.cost.vector.pareto_mask`
    (sort-based O(n log n) for the two-objective default), replacing the
    O(n²) pairwise scan that used to dominate wall time on dense grids —
    with identical semantics: an entry is dominated iff some entry with a
    *different* score vector is >= in every objective, so equal-score
    duplicates survive together.
    """
    entries = list(entries)
    if not entries:
        return []
    if objectives is None:
        objectives = (
            lambda e: e.report.ekit,
            lambda e: -e.report.feasibility.limiting_resource_utilization,
        )
    import numpy as np

    from repro.cost.vector import pareto_mask

    scores = np.array(
        [[obj(e) for obj in objectives] for e in entries], dtype=np.float64
    )
    mask = pareto_mask(scores)
    return [entry for entry, keep in zip(entries, mask) if keep]


@dataclass
class SweepResult:
    """Reports of one batched sweep, in deterministic sweep order."""

    entries: list[SweepEntry] = field(default_factory=list)
    #: wall-clock seconds of the whole batch (includes backend overheads)
    wall_seconds: float = 0.0
    #: aggregated pipeline cache/timing statistics (see ``merge_stats``);
    #: deliberately *not* part of any canonical report payload
    stats: dict = field(default_factory=dict)

    @property
    def evaluated(self) -> int:
        return len(self.entries)

    @property
    def estimation_seconds(self) -> float:
        """Estimator-only seconds summed over all variants."""
        return sum(e.report.estimation_seconds for e in self.entries)

    @property
    def variants_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.evaluated / self.wall_seconds

    def feasible(self) -> list[SweepEntry]:
        return [e for e in self.entries if e.report.feasible]

    def best(self) -> SweepEntry | None:
        """The fastest feasible design point (None when nothing fits)."""
        feasible = self.feasible()
        if not feasible:
            return None
        return max(feasible, key=lambda e: e.report.ekit)

    def pareto_frontier(
        self,
        objectives: Sequence[Callable[[SweepEntry], float]] | None = None,
        *,
        include_infeasible: bool = False,
    ) -> list[SweepEntry]:
        """The non-dominated feasible entries (like :meth:`best`, points
        that do not fit the device or its IO budget are not recommended
        unless ``include_infeasible`` is set)."""
        entries = self.entries if include_infeasible else self.feasible()
        return pareto_frontier(entries, objectives)

    def summary_rows(self) -> list[dict]:
        """One row per point: the data behind a multi-axis sweep table."""
        rows = []
        for entry in self.entries:
            report = entry.report
            util = report.utilization
            rows.append(
                {
                    **entry.point.as_dict(),
                    "ewgt_per_s": report.throughput.ewgt,
                    "ekit_per_s": report.ekit,
                    "alut_pct": util["alut"] * 100,
                    "reg_pct": util["reg"] * 100,
                    "bram_pct": util["bram_bits"] * 100,
                    "dsp_pct": util["dsp"] * 100,
                    "limiting_factor": report.limiting_factor.value,
                    "feasible": report.feasible,
                }
            )
        return rows

    def canonical_dicts(self) -> list[dict]:
        """Timing-free dicts of all entries (for backend-identity checks)."""
        return [entry.as_dict() for entry in self.entries]

    def stage_timing_rows(self) -> list[dict]:
        """Per-stage wall time and share, sorted by cost (for CLI tables)."""
        seconds = self.stats.get("stage_seconds", {}) if self.stats else {}
        total = sum(seconds.values()) or 1.0
        return [
            {"stage": stage, "seconds": value, "share": value / total}
            for stage, value in sorted(seconds.items(), key=lambda kv: -kv[1])
        ]


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------


class ExplorationEngine:
    """Incremental costing of design points through a pluggable backend.

    The engine is a driver loop around the :class:`Optimizer` protocol
    (:mod:`repro.explore.optimizer`): an optimizer proposes point
    batches, the backend costs them, the outcomes feed back.  The classic
    entry points — :meth:`cost_many` and :meth:`explore` — are the
    degenerate ``ExhaustiveOptimizer`` driven through the same loop, and
    stay byte-identical to the pre-loop eager engine.
    """

    def __init__(self, backend: SerialBackend | ProcessPoolBackend | None = None):
        self.backend = backend or SerialBackend()

    def run_optimizer(self, optimizer, *, deadline: Deadline | None = None,
                      retry_policy: RetryPolicy | None = None,
                      on_round=None):
        """Drive an optimizer to completion through this engine's backend.

        One loop round = one ``next_batch()`` proposed, costed, fed back.
        ``deadline`` bounds the whole loop (checked between rounds, and
        propagated into the backend, which checks it between points or
        batch completions).  ``retry_policy`` optionally wraps each batch
        dispatch — a loop-level budget *on top of* the backends' own
        per-batch recovery, so the default is a single attempt.
        ``on_round(round, entries)`` fires after every round, which is
        what lets the service stream round events.  Returns an
        :class:`~repro.explore.optimizer.OptimizerRun`.
        """
        from repro.explore.optimizer import (
            JobFactory,
            OptimizerRun,
            drive_optimizer,
        )

        policy = retry_policy if retry_policy is not None else RetryPolicy.none()
        job_for = getattr(optimizer, "job_for", None) or JobFactory()
        started = time.perf_counter()

        def evaluate(points):
            jobs = [job_for(point) for point in points]
            if policy.max_attempts > 1:
                reports = policy.call(
                    lambda attempt: self.backend.run(jobs, deadline=deadline),
                    key="optimizer-batch", what="optimizer batch",
                    deadline=deadline)
            else:
                reports = self.backend.run(jobs, deadline=deadline)
            return [SweepEntry(job.point, report)
                    for job, report in zip(jobs, reports)]

        entries, rounds = drive_optimizer(
            optimizer, evaluate, deadline=deadline, on_round=on_round)
        wall = time.perf_counter() - started
        collect = getattr(self.backend, "collect_stats", None)
        stats = collect() if collect is not None else {}
        return OptimizerRun(entries=entries, rounds=rounds,
                            result=optimizer.result(), wall_seconds=wall,
                            stats=stats)

    def cost_many(self, jobs: Sequence[CostJob],
                  deadline: Deadline | None = None) -> SweepResult:
        """Cost a batch of jobs; reports keep the job order.

        One exhaustive-optimizer round through :meth:`run_optimizer`:
        ``deadline`` propagates into the backend, which checks it between
        design points (serial) or batch completions (pool).
        """
        from repro.explore.optimizer import ExhaustiveOptimizer

        run = self.run_optimizer(ExhaustiveOptimizer(jobs=jobs),
                                 deadline=deadline)
        return run.sweep()

    def explore(self, space: DesignSpace) -> SweepResult:
        """Lower a design space and cost every point.

        A backend with a dense lowering (``explore_space``) evaluates the
        whole space as broadcast arrays and materializes every report;
        spaces the dense path cannot represent (non-lane-separable
        designs) transparently fall back to the per-point optimizer loop.
        """
        dense = getattr(self.backend, "explore_space", None)
        if dense is not None:
            from repro.cost.vector import DenseUnsupportedError

            try:
                return dense(space).materialize_all()
            except DenseUnsupportedError:
                pass
        from repro.explore.optimizer import ExhaustiveOptimizer

        run = self.run_optimizer(ExhaustiveOptimizer(space))
        return run.sweep()

    def explore_dense(self, space: DesignSpace):
        """Dense-evaluate a space *without* materializing its reports.

        Returns the backend's :class:`~repro.explore.dense.DenseSweep`
        (arrays + lazy entries).  Raises
        :class:`~repro.cost.vector.DenseUnsupportedError` when the backend
        has no dense lowering or the space is not lane-separable.
        """
        from repro.cost.vector import DenseUnsupportedError

        dense = getattr(self.backend, "explore_space", None)
        if dense is None:
            raise DenseUnsupportedError(
                f"backend {type(self.backend).__name__} has no dense lowering"
            )
        return dense(space)
