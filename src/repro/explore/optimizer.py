"""Incremental optimizers: exploration as a batched decision loop.

The original exploration stack was a one-shot grid — every layer assumed
the full point list existed up front and was consumed in a single pass.
This module inverts that control flow around the :class:`Optimizer`
protocol (the shape of xeda's ``FmaxOptimizer`` DSE loop): an optimizer
*proposes* a batch of design points, the engine costs the batch through
whichever backend it carries (serial / process pool / dense), and the
outcomes *feed back* into the optimizer, which decides what to ask for
next.

    while not optimizer.finished:
        batch = optimizer.next_batch()          # propose
        entries = backend.cost(batch)           # evaluate
        for entry in entries:
            optimizer.process_outcome(entry.point, entry)   # learn

Four optimizers ship on the seam:

``ExhaustiveOptimizer``
    The classic full sweep, re-expressed as the degenerate optimizer that
    proposes every point and learns nothing.  It *is* the legacy eager
    path — ``ExplorationEngine.cost_many``/``explore`` drive it — and its
    reports are byte-identical to the pre-loop engine (goldens included).
``FmaxBinarySearchOptimizer``
    The maximum feasible clock per design family, found by bracket and
    refine: geometric growth until infeasible, then interior probes until
    the bracket closes below a resolution.  O(log(range/resolution))
    costings per family instead of a clock axis.
``SuccessiveHalvingOptimizer``
    Racing labeled arms (kernels × forms) under a total costing budget:
    every rung doubles the per-arm allowance and eliminates the worst
    ``1 - 1/eta`` of the surviving arms by best feasible throughput.
``SurrogatePrunedOptimizer``
    The dense numpy engine as a *prune stage*: one broadcast pass scores
    the whole grid, only the top slice survives to full scalar costing
    (and optional cycle-accurate validation of the winner).

The driver loop lives in :func:`drive_optimizer` /
:meth:`~repro.explore.engine.ExplorationEngine.run_optimizer`; deadlines
and retry policies come from :mod:`repro.resilience` — the loop checks
its :class:`~repro.resilience.Deadline` between rounds and can wrap each
batch dispatch in a :class:`~repro.resilience.RetryPolicy` on top of the
backends' own per-batch recovery.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from itertools import islice
from typing import Callable, Iterable, Iterator, Protocol, Sequence, runtime_checkable

from repro.explore.engine import SweepEntry, SweepResult
from repro.obs.trace import span as trace_span
from repro.explore.space import (
    CostJob,
    DesignPoint,
    DesignSpace,
    _form_value,
    iter_jobs,
)
from repro.models.streaming import PatternKind
from repro.resilience import Deadline

__all__ = [
    "Optimizer",
    "OptimizerRound",
    "OptimizerRun",
    "JobFactory",
    "drive_optimizer",
    "ExhaustiveOptimizer",
    "FmaxBinarySearchOptimizer",
    "SuccessiveHalvingOptimizer",
    "SurrogatePrunedOptimizer",
    "GuidedLaneOptimizer",
    "OPTIMIZERS",
]


@runtime_checkable
class Optimizer(Protocol):
    """The incremental exploration protocol.

    ``next_batch`` proposes the next design points to cost (an empty
    batch ends the loop), ``process_outcome`` feeds one costed entry
    back, ``finished`` short-circuits the loop, and ``result`` is the
    optimizer's own JSON-able summary — what it was searching for, as
    opposed to the raw entries the driver accumulates.

    Optimizers may additionally offer ``job_for(point)`` (a custom
    :class:`~repro.explore.space.CostJob` lowering, e.g. to reuse
    prebuilt modules or carry injected options) and ``round_note()``
    (a one-line provenance string for the round just processed).
    """

    def next_batch(self) -> list[DesignPoint]: ...

    def process_outcome(self, point: DesignPoint, entry: SweepEntry) -> None: ...

    @property
    def finished(self) -> bool: ...

    def result(self) -> dict: ...


@dataclass(frozen=True)
class OptimizerRound:
    """Provenance of one driver-loop round."""

    index: int
    points: int
    wall_seconds: float
    note: str = ""

    def as_dict(self) -> dict:
        payload = {"round": self.index, "points": self.points}
        if self.note:
            payload["note"] = self.note
        return payload


@dataclass
class OptimizerRun:
    """Everything one optimizer loop produced.

    ``entries`` hold every costed point in evaluation order (across all
    rounds), ``rounds`` the per-round provenance, ``result`` the
    optimizer's own summary.  ``sweep()`` reshapes the run into the
    classic :class:`~repro.explore.engine.SweepResult` so existing
    selection helpers (best/frontier/summary tables) keep working.
    """

    entries: list[SweepEntry] = field(default_factory=list)
    rounds: list[OptimizerRound] = field(default_factory=list)
    result: dict = field(default_factory=dict)
    wall_seconds: float = 0.0
    stats: dict = field(default_factory=dict)

    @property
    def evaluated(self) -> int:
        return len(self.entries)

    def sweep(self) -> SweepResult:
        return SweepResult(entries=self.entries, wall_seconds=self.wall_seconds,
                           stats=self.stats)

    def best(self) -> SweepEntry | None:
        feasible = [e for e in self.entries if e.report.feasible]
        if not feasible:
            return None
        return max(feasible, key=lambda e: e.report.ekit)

    def rounds_payload(self) -> list[dict]:
        return [r.as_dict() for r in self.rounds]


class JobFactory:
    """Lower design points to cost jobs with family/workload sharing.

    Optimizers propose bare :class:`DesignPoint` coordinates; the jobs
    behind them share one workload per (kernel, grid, iterations) and one
    lazy family handle per (kernel, lanes, grid) — exactly the sharing
    :func:`~repro.explore.space.build_jobs` gives an eager sweep, so an
    incremental loop hits the same family caches.
    """

    def __init__(self) -> None:
        self._workloads: dict[tuple, object] = {}
        self._modules: dict[tuple, object] = {}
        self._kernels: dict[str, object] = {}

    def _kernel(self, name: str):
        kernel = self._kernels.get(name)
        if kernel is None:
            from repro.kernels import get_kernel

            kernel = self._kernels[name] = get_kernel(name)
        return kernel

    def __call__(self, point: DesignPoint) -> CostJob:
        kernel = self._kernel(point.kernel)
        wkey = (point.kernel, point.grid, point.iterations)
        workload = self._workloads.get(wkey)
        if workload is None:
            workload = self._workloads[wkey] = kernel.workload(
                tuple(point.grid), point.iterations)
        mkey = (point.kernel, point.lanes, point.grid)
        module = self._modules.get(mkey)
        if module is None:
            module = self._modules[mkey] = point.family_handle(kernel)
        return CostJob(point=point, module=module, workload=workload)


def drive_optimizer(
    optimizer: Optimizer,
    evaluate: Callable[[list[DesignPoint]], list[SweepEntry]],
    *,
    deadline: Deadline | None = None,
    on_round: Callable[[OptimizerRound, list[SweepEntry]], None] | None = None,
) -> tuple[list[SweepEntry], list[OptimizerRound]]:
    """The generic propose → evaluate → learn loop.

    ``evaluate`` is whatever costs a batch of points (an engine backend, a
    bare compiler, a test double); the deadline is checked between rounds
    — a budget on the *loop*, on top of whatever the evaluator enforces
    per point.  Returns every costed entry plus per-round provenance.
    """
    entries: list[SweepEntry] = []
    rounds: list[OptimizerRound] = []
    index = 0
    while not optimizer.finished:
        if deadline is not None:
            deadline.check(f"optimizer round {index}")
        batch = optimizer.next_batch()
        if not batch:
            break
        started = time.perf_counter()
        with trace_span("optimizer.round", index=index, points=len(batch)) as sp:
            round_entries = evaluate(batch)
            for entry in round_entries:
                optimizer.process_outcome(entry.point, entry)
            note_fn = getattr(optimizer, "round_note", None)
            note = note_fn() if callable(note_fn) else ""
            if sp is not None and note:
                sp.attrs["note"] = note
        round_ = OptimizerRound(index=index, points=len(batch),
                                wall_seconds=time.perf_counter() - started,
                                note=note)
        rounds.append(round_)
        entries.extend(round_entries)
        if on_round is not None:
            on_round(round_, round_entries)
        index += 1
    return entries, rounds


class OptimizerBase:
    """Shared plumbing: a job factory, a finished flag, best tracking."""

    def __init__(self) -> None:
        self._factory = JobFactory()
        self._finished = False
        self._evaluated = 0
        self._best: SweepEntry | None = None
        self._note = ""

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def evaluated(self) -> int:
        return self._evaluated

    def job_for(self, point: DesignPoint) -> CostJob:
        return self._factory(point)

    def round_note(self) -> str:
        return self._note

    def _observe(self, entry: SweepEntry) -> None:
        self._evaluated += 1
        if entry.report.feasible and (
            self._best is None or entry.report.ekit > self._best.report.ekit
        ):
            self._best = entry

    def _best_payload(self) -> dict | None:
        if self._best is None:
            return None
        return {**self._best.point.as_dict(),
                "ekit_per_s": self._best.report.ekit}


def _normalize_spaces(spaces) -> list[DesignSpace]:
    if isinstance(spaces, DesignSpace):
        return [spaces]
    return list(spaces)


# ----------------------------------------------------------------------
# Exhaustive: the legacy eager path as the degenerate optimizer
# ----------------------------------------------------------------------


class ExhaustiveOptimizer(OptimizerBase):
    """Propose every point of the space(s); learn nothing, miss nothing.

    This is the pre-loop engine re-expressed on the protocol: with
    ``jobs`` the exact prebuilt jobs run (one round per ``batch_points``
    chunk, everything at once by default), with ``spaces`` the jobs are
    generated lazily per space (one round per space) so a large product
    grid never has to be materialized ahead of the round that costs it.
    Reports are byte-identical to the eager path either way.
    """

    def __init__(
        self,
        spaces: DesignSpace | Sequence[DesignSpace] | None = None,
        *,
        jobs: Iterable[CostJob] | None = None,
        batch_points: int | None = None,
        lazy: bool = True,
    ):
        super().__init__()
        if (spaces is None) == (jobs is None):
            raise ValueError("pass exactly one of spaces= or jobs=")
        if jobs is not None:
            stream: Iterator[CostJob] = iter(list(jobs))
            if batch_points is None:
                self._chunks = self._single_chunk(stream)
            else:
                self._chunks = self._chunked(stream, batch_points)
        else:
            space_list = _normalize_spaces(spaces)
            if batch_points is None:
                self._chunks = (list(iter_jobs(s, lazy=lazy)) for s in space_list)
            else:
                chained = (job for s in space_list for job in iter_jobs(s, lazy=lazy))
                self._chunks = self._chunked(chained, batch_points)
        self._batch_jobs: dict[DesignPoint, CostJob] = {}

    @staticmethod
    def _single_chunk(stream: Iterator[CostJob]) -> Iterator[list[CostJob]]:
        chunk = list(stream)
        if chunk:
            yield chunk

    @staticmethod
    def _chunked(stream: Iterator[CostJob], n: int) -> Iterator[list[CostJob]]:
        if n < 1:
            raise ValueError(f"batch_points must be >= 1, got {n}")
        while True:
            chunk = list(islice(stream, n))
            if not chunk:
                return
            yield chunk

    def next_batch(self) -> list[DesignPoint]:
        chunk = next(self._chunks, None)
        if chunk is None:
            self._finished = True
            return []
        self._batch_jobs = {job.point: job for job in chunk}
        kernels = sorted({job.point.kernel for job in chunk})
        self._note = f"{'+'.join(kernels)}: {len(chunk)} points"
        return [job.point for job in chunk]

    def job_for(self, point: DesignPoint) -> CostJob:
        job = self._batch_jobs.get(point)
        return job if job is not None else self._factory(point)

    def process_outcome(self, point: DesignPoint, entry: SweepEntry) -> None:
        self._observe(entry)

    def result(self) -> dict:
        return {
            "optimizer": "exhaustive",
            "evaluated": self._evaluated,
            "best": self._best_payload(),
        }


# ----------------------------------------------------------------------
# Fmax: bracket-and-refine binary search per design family
# ----------------------------------------------------------------------


class _FmaxFamily:
    """The bracket state of one (kernel, lanes, device, form, pattern)."""

    def __init__(self, kernel: str, grid: tuple[int, ...], iterations: int,
                 lanes: int, device, form, pattern, start_mhz: float):
        self.kernel = kernel
        self.grid = grid
        self.iterations = iterations
        self.lanes = lanes
        self.device = device
        self.form = form
        self.pattern = pattern
        self.start_mhz = start_mhz
        self.lo: float | None = None   # highest clock known feasible
        self.hi: float | None = None   # lowest clock known infeasible
        self.probes = 0
        self.seen: set[float] = set()
        self.done = False
        self.capped = False
        self.note = ""

    def key(self) -> tuple:
        return (self.kernel, self.lanes, self.device.name,
                _form_value(self.form), self.pattern)

    def candidates(self, k: int, resolution: float, min_mhz: float,
                   max_mhz: float) -> list[float]:
        if self.done:
            return []
        if self.lo is None and self.hi is None:
            return self._emit([self.start_mhz])
        if self.hi is None:  # everything probed so far is feasible: grow
            if self.lo >= max_mhz:
                self.done = self.capped = True
                self.note = f"feasible at the {max_mhz:g} MHz cap"
                return []
            ladder, clock = [], self.lo
            for _ in range(k):
                clock = min(max_mhz, clock * 2.0)
                ladder.append(clock)
                if clock >= max_mhz:
                    break
            return self._emit(ladder)
        if self.lo is None:  # everything probed so far is infeasible: descend
            if self.hi <= min_mhz:
                self.done = True
                self.note = f"infeasible down to the {min_mhz:g} MHz floor"
                return []
            ladder, clock = [], self.hi
            for _ in range(k):
                clock = max(min_mhz, clock / 2.0)
                ladder.append(clock)
                if clock <= min_mhz:
                    break
            return self._emit(ladder)
        gap = self.hi - self.lo
        if gap <= resolution:
            self.done = True
            self.note = f"bracket closed to {gap:g} MHz"
            return []
        interior = [self.lo + gap * (i + 1) / (k + 1) for i in range(k)]
        emitted = self._emit(c for c in interior if self.lo < c < self.hi)
        if not emitted:  # float spacing finer than the remaining gap
            self.done = True
            self.note = f"bracket closed to {gap:g} MHz"
        return emitted

    def _emit(self, clocks: Iterable[float]) -> list[float]:
        fresh = []
        for clock in clocks:
            if clock not in self.seen:
                self.seen.add(clock)
                fresh.append(clock)
        return fresh

    def observe(self, clock: float, feasible: bool) -> None:
        self.probes += 1
        if feasible:
            self.lo = clock if self.lo is None else max(self.lo, clock)
        else:
            self.hi = clock if self.hi is None else min(self.hi, clock)

    @property
    def fmax_mhz(self) -> float | None:
        return self.lo

    def as_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "lanes": self.lanes,
            "device": self.device.name,
            "form": _form_value(self.form),
            "pattern": self.pattern.value,
            "fmax_mhz": self.fmax_mhz,
            "bracket_mhz": [self.lo, self.hi],
            "probes": self.probes,
            "capped": self.capped,
            "note": self.note,
        }


class FmaxBinarySearchOptimizer(OptimizerBase):
    """Maximum feasible clock per design family, by bracket and refine.

    Each family — one (kernel, lanes, device, form, pattern) coordinate
    of the space(s), the clock axis deliberately ignored — runs an
    independent bracket search: probe the device's nominal fmax, grow
    geometrically while feasible (or descend while infeasible), then
    refine the ``(feasible, infeasible)`` bracket with interior probes
    until it closes below ``resolution``.  Batches interleave candidates
    from every unfinished family, so a pool backend fills its workers
    across families instead of waiting on one search at a time.

    The returned ``fmax_mhz`` is the highest clock *costed feasible*;
    ``fmax_mhz + resolution`` is at or beyond the infeasible bracket edge
    (the model's feasibility is monotone in clock: resources are
    clock-independent, required bandwidth grows with it).  Families that
    never become feasible report ``fmax_mhz: null``; families feasible at
    the ``max_mhz`` cap report ``capped: true``.  Note that under
    ``form="auto"`` small workloads select the on-chip form C, whose
    bandwidth requirement is zero — every clock is feasible and the
    search runs straight to the cap; bandwidth-constrained forms A/B are
    where a finite fmax lives.
    """

    def __init__(
        self,
        spaces: DesignSpace | Sequence[DesignSpace],
        *,
        resolution: float = 1.0,
        probes_per_round: int = 3,
        start_mhz: float | None = None,
        min_mhz: float = 25.0,
        max_mhz: float = 1600.0,
    ):
        super().__init__()
        if resolution <= 0:
            raise ValueError(f"resolution must be positive, got {resolution}")
        if probes_per_round < 1:
            raise ValueError(
                f"probes_per_round must be >= 1, got {probes_per_round}")
        self.resolution = float(resolution)
        self.probes_per_round = int(probes_per_round)
        self.min_mhz = float(min_mhz)
        self.max_mhz = float(max_mhz)
        self._families: list[_FmaxFamily] = []
        self._index: dict[tuple, _FmaxFamily] = {}
        for space in _normalize_spaces(spaces):
            for lanes in space.lane_counts():
                for device in space.devices:
                    for form in space.forms:
                        for pattern in space.patterns:
                            start = start_mhz if start_mhz is not None \
                                else float(device.fmax_mhz)
                            start = min(self.max_mhz, max(self.min_mhz, start))
                            family = _FmaxFamily(
                                kernel=space.kernel.name,
                                grid=tuple(space.grid),
                                iterations=space.iterations,
                                lanes=lanes,
                                device=device,
                                form=form,
                                pattern=PatternKind(pattern),
                                start_mhz=start,
                            )
                            self._families.append(family)
                            self._index[family.key()] = family
        if not self._families:
            self._finished = True

    def next_batch(self) -> list[DesignPoint]:
        batch: list[DesignPoint] = []
        open_families = 0
        for family in self._families:
            clocks = family.candidates(self.probes_per_round, self.resolution,
                                       self.min_mhz, self.max_mhz)
            if not family.done:
                open_families += 1
            for clock in clocks:
                batch.append(DesignPoint(
                    kernel=family.kernel,
                    lanes=family.lanes,
                    grid=family.grid,
                    iterations=family.iterations,
                    clock_mhz=clock,
                    form=family.form,
                    device=family.device,
                    pattern=family.pattern,
                ))
        if not batch:
            self._finished = True
            return []
        self._note = f"{len(batch)} probes across {open_families} open families"
        return batch

    def process_outcome(self, point: DesignPoint, entry: SweepEntry) -> None:
        self._observe(entry)
        key = (point.kernel, point.lanes, point.device.name,
               _form_value(point.form), point.pattern)
        family = self._index.get(key)
        if family is not None:
            family.observe(point.resolved_clock_mhz, entry.report.feasible)

    def family_results(self) -> list[_FmaxFamily]:
        return list(self._families)

    def result(self) -> dict:
        families = sorted(
            (f.as_dict() for f in self._families),
            key=lambda f: (f["kernel"], f["device"], f["form"], f["lanes"],
                           f["pattern"]),
        )
        return {
            "optimizer": "fmax",
            "resolution_mhz": self.resolution,
            "probes": self._evaluated,
            "families": families,
        }


# ----------------------------------------------------------------------
# Successive halving: racing arms under a costing budget
# ----------------------------------------------------------------------


class _Arm:
    def __init__(self, label: str, space: DesignSpace):
        self.label = label
        self.space = space
        self._stream = iter_jobs(space)
        self.active = True
        self.exhausted = False
        self.evaluated = 0
        self.best: SweepEntry | None = None
        self.eliminated_rung: int | None = None

    def take(self, n: int) -> list[CostJob]:
        jobs = list(islice(self._stream, n))
        if not jobs:
            self.exhausted = True
        return jobs

    @property
    def best_ekit(self) -> float:
        if self.best is None:
            return -math.inf
        return self.best.report.ekit

    def as_dict(self) -> dict:
        return {
            "arm": self.label,
            "evaluated": self.evaluated,
            "best_ekit_per_s": None if self.best is None else self.best.report.ekit,
            "eliminated_rung": self.eliminated_rung,
        }


class SuccessiveHalvingOptimizer(OptimizerBase):
    """Race labeled design spaces under a total costing budget.

    Arms are ``(label, DesignSpace)`` pairs (bare spaces label themselves
    by kernel name) — typically kernels × memory-execution forms.  Rung
    ``r`` gives every surviving arm an allowance of
    ``rung_points * eta**r`` points from its (lazy) sweep stream; after
    the rung, the arms are ranked by best feasible throughput and only
    the top ``1/eta`` survive.  The loop ends when the budget is spent,
    one arm remains and is exhausted, or every stream runs dry — so the
    budget concentrates on the arms that keep winning.
    """

    def __init__(self, arms, *, budget: int = 64, eta: int = 2,
                 rung_points: int = 2):
        super().__init__()
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        if eta < 2:
            raise ValueError(f"eta must be >= 2, got {eta}")
        if rung_points < 1:
            raise ValueError(f"rung_points must be >= 1, got {rung_points}")
        self.budget = int(budget)
        self.eta = int(eta)
        self.rung_points = int(rung_points)
        self._arms: list[_Arm] = []
        for arm in arms:
            if isinstance(arm, DesignSpace):
                label, space = arm.kernel.name, arm
            else:
                label, space = arm
            self._arms.append(_Arm(str(label), space))
        if not self._arms:
            self._finished = True
        self.spent = 0
        self.rungs = 0
        self._jobs: dict[DesignPoint, CostJob] = {}
        self._point_arm: dict[DesignPoint, _Arm] = {}

    def _halve(self) -> None:
        active = [a for a in self._arms if a.active]
        if len(active) <= 1:
            return
        ranked = sorted(active, key=lambda a: (-a.best_ekit, a.label))
        keep = max(1, math.ceil(len(active) / self.eta))
        for arm in ranked[keep:]:
            arm.active = False
            arm.eliminated_rung = self.rungs

    def next_batch(self) -> list[DesignPoint]:
        if self._finished:
            return []
        if self.rungs > 0:
            self._halve()
        if self.spent >= self.budget:
            self._finished = True
            self._note = "budget exhausted"
            return []
        per_arm = self.rung_points * (self.eta ** self.rungs)
        batch: list[DesignPoint] = []
        self._jobs = {}
        self._point_arm = {}
        survivors = []
        for arm in self._arms:
            if not arm.active or arm.exhausted:
                continue
            allowance = min(per_arm, self.budget - self.spent - len(batch))
            if allowance <= 0:
                break
            jobs = arm.take(allowance)
            if not jobs:
                continue
            survivors.append(arm.label)
            for job in jobs:
                self._jobs[job.point] = job
                self._point_arm[job.point] = arm
                batch.append(job.point)
        if not batch:
            self._finished = True
            return []
        self.spent += len(batch)
        self.rungs += 1
        self._note = (f"rung {self.rungs - 1}: {len(batch)} points across "
                      f"{len(survivors)} arms ({self.spent}/{self.budget} spent)")
        return batch

    def job_for(self, point: DesignPoint) -> CostJob:
        job = self._jobs.get(point)
        return job if job is not None else self._factory(point)

    def process_outcome(self, point: DesignPoint, entry: SweepEntry) -> None:
        self._observe(entry)
        arm = self._point_arm.get(point)
        if arm is None:
            return
        arm.evaluated += 1
        if entry.report.feasible and entry.report.ekit > arm.best_ekit:
            arm.best = entry

    def result(self) -> dict:
        winner = None
        if self._best is not None:
            for arm in self._arms:
                if arm.best is not None and arm.best.report.ekit == self._best.report.ekit:
                    winner = arm.label
                    break
        return {
            "optimizer": "halving",
            "budget": self.budget,
            "spent": self.spent,
            "eta": self.eta,
            "rungs": self.rungs,
            "winner": winner,
            "best": self._best_payload(),
            "arms": [a.as_dict() for a in
                     sorted(self._arms, key=lambda a: a.label)],
        }


# ----------------------------------------------------------------------
# Surrogate prune: dense broadcast pass → scalar costing of survivors
# ----------------------------------------------------------------------


class SurrogatePrunedOptimizer(OptimizerBase):
    """Dense numpy pass prunes the grid; survivors get the full pipeline.

    Round 0 evaluates the whole space through
    :meth:`~repro.explore.dense.DenseBackend.explore_space` — thousands
    of points as one broadcast — and keeps the top
    ``max(keep_min, ceil(keep_fraction * n))`` by feasible throughput.
    Round 1 proposes only the survivors, which the driving engine costs
    through its scalar backend (serial or pooled), report-for-report
    identical to what an exhaustive sweep would have produced for those
    points.  Spaces the dense path cannot represent (not lane-separable)
    fall back to proposing every point, with the fallback recorded in the
    result.  With ``validate_best=True`` the winning entry is additionally
    cross-validated against the cycle-accurate simulators.
    """

    def __init__(
        self,
        space: DesignSpace,
        *,
        keep_fraction: float = 0.1,
        keep_min: int = 1,
        dense_backend=None,
        validate_best: bool = False,
    ):
        super().__init__()
        if not 0 < keep_fraction <= 1:
            raise ValueError(
                f"keep_fraction must be in (0, 1], got {keep_fraction}")
        if keep_min < 1:
            raise ValueError(f"keep_min must be >= 1, got {keep_min}")
        self.space = space
        self.keep_fraction = float(keep_fraction)
        self.keep_min = int(keep_min)
        self.validate_best = bool(validate_best)
        self._dense_backend = dense_backend
        self._phase = "prune"
        self._dense_points = 0
        self._survivors = 0
        self._fallback: str | None = None
        self._validation: dict | None = None

    def next_batch(self) -> list[DesignPoint]:
        if self._phase != "prune":
            self._finish()
            return []
        self._phase = "cost"
        if self._dense_backend is None:
            from repro.explore.dense import DenseBackend

            self._dense_backend = DenseBackend()
        from repro.cost.vector import DenseUnsupportedError

        try:
            sweep = self._dense_backend.explore_space(self.space)
        except DenseUnsupportedError as exc:
            self._fallback = str(exc)
            points = self.space.points()
            self._survivors = len(points)
            self._note = (f"dense prune unavailable; costing all "
                          f"{len(points)} points")
            return points
        self._dense_points = sweep.evaluated
        keep = sweep.prune_indices(keep_fraction=self.keep_fraction,
                                   keep_min=self.keep_min)
        points = [sweep.grid.point(*sweep.grid.coords(i)) for i in keep]
        self._survivors = len(points)
        self._note = (f"dense pass scored {sweep.evaluated} points; "
                      f"{len(points)} survive to scalar costing")
        return points

    def _finish(self) -> None:
        if self.validate_best and self._best is not None \
                and self._validation is None:
            from repro.validate import CrossValidator

            record = CrossValidator().validate_entry(self._best)
            self._validation = {
                "within_tolerance": record.within_tolerance,
                "relative_error": record.seconds_relative_error,
            }
        self._finished = True

    def process_outcome(self, point: DesignPoint, entry: SweepEntry) -> None:
        self._observe(entry)

    def result(self) -> dict:
        if not self._finished:
            self._finish()
        return {
            "optimizer": "surrogate",
            "keep_fraction": self.keep_fraction,
            "dense_points": self._dense_points,
            "scalar_points": self._survivors,
            "pruned": max(0, self._dense_points - self._survivors),
            "fallback": self._fallback,
            "best": self._best_payload(),
            "validation": self._validation,
        }


# ----------------------------------------------------------------------
# Guided lane walk (the classic wall-following search, on the protocol)
# ----------------------------------------------------------------------


class GuidedLaneOptimizer(OptimizerBase):
    """Walk lane counts upward until a wall is hit, one point per round.

    The optimizer form of the classic guided search: propose the next
    lane count, look at its report, stop on the *computation wall* (the
    design no longer fits the device) or the *communication wall*
    (throughput improved by less than ``min_gain`` while the limiting
    factor is host/DRAM bandwidth — wider designs cannot pay off).
    Works from :class:`~repro.explore.variants.VariantRecord` lists so
    compilers with injected models keep their exact costing session.
    """

    def __init__(self, variants, *, min_gain: float = 1.05, options=None):
        super().__init__()
        variants = list(variants)
        if not variants:
            raise ValueError("no variants to explore")
        self._ordered = sorted(variants, key=lambda v: v.lanes)
        self.kernel = self._ordered[0].kernel
        self._by_lanes = {v.lanes: v for v in self._ordered}
        self._options = options
        self._cursor = 0
        self._previous_ekit = 0.0
        self.min_gain = float(min_gain)
        self.stopped_by = ""
        self.entries: list[SweepEntry] = []

    def _point(self, variant) -> DesignPoint:
        from repro.substrate.fpga_device import MAIA_STRATIX_V_GSD8

        workload = variant.workload
        grid = tuple(workload.ndrange.dims) if workload is not None else ()
        iterations = workload.repetitions if workload is not None else 0
        device = getattr(self._options, "device", None) or MAIA_STRATIX_V_GSD8
        form = getattr(self._options, "form", None) or "auto"
        return DesignPoint(
            kernel=variant.kernel,
            lanes=variant.lanes,
            grid=grid,
            iterations=iterations,
            clock_mhz=getattr(self._options, "clock_mhz", None),
            form=_form_value(form),
            device=device,
        )

    def variant_for(self, point: DesignPoint):
        return self._by_lanes[point.lanes]

    def job_for(self, point: DesignPoint) -> CostJob:
        variant = self.variant_for(point)
        return CostJob(point=point, module=variant.module,
                       workload=variant.workload, options=self._options)

    def next_batch(self) -> list[DesignPoint]:
        if self._cursor >= len(self._ordered):
            self._finished = True
            return []
        return [self._point(self._ordered[self._cursor])]

    def process_outcome(self, point: DesignPoint, entry: SweepEntry) -> None:
        from repro.cost.throughput import LimitingFactor

        self._observe(entry)
        self._cursor += 1
        self.entries.append(entry)
        report = entry.report
        if not report.feasibility.fits_resources:
            self.stopped_by = "computation wall"
            self._finished = True
            return
        bandwidth_bound = report.limiting_factor in (
            LimitingFactor.HOST_BANDWIDTH,
            LimitingFactor.DRAM_BANDWIDTH,
        )
        if (self._previous_ekit > 0
                and report.ekit < self._previous_ekit * self.min_gain
                and bandwidth_bound):
            self.stopped_by = "communication wall"
            self._finished = True
            return
        self._previous_ekit = report.ekit
        if self._cursor >= len(self._ordered):
            self._finished = True
            self.stopped_by = self.stopped_by or "axis exhausted"

    def result(self) -> dict:
        return {
            "optimizer": "guided",
            "kernel": self.kernel,
            "evaluated": self._evaluated,
            "stopped_by": self.stopped_by or "axis exhausted",
            "best": self._best_payload(),
        }


#: the optimizers `tybec explore --optimizer` / `tybec suite dse` accept
OPTIMIZERS = ("exhaustive", "fmax", "halving", "surrogate")
