"""Multi-axis design spaces for exploration.

The original exploration layer could only sweep one axis — the lane count
of :class:`~repro.explore.variants.VariantRecord` — while the paper's
design space (§III-4) and its cost model expose several more dimensions
that change a variant's cost report.  A :class:`DesignSpace` spans the
cartesian product of:

* **lanes** — thread parallelism (``KNL``), the Figure-15 axis;
* **clock frequency** — the device operating frequency ``FD``;
* **memory-execution form** — Figure 6's A/B/C scenarios (or ``auto``);
* **device** — the target FPGA board;
* **access pattern** — contiguous/strided/random streaming (§III-6).

A :class:`DesignPoint` is one coordinate of that product, directly
convertible into the :class:`~repro.compiler.pipeline.CompilationOptions`
that cost it.  Design points are frozen, hashable and pickle-safe so they
can be fanned out to worker processes.

(The *configuration-class* coordinates of Figure 5 — pipelining, re-use,
vectorisation — live in :mod:`repro.models.design_space`; a sweep point
here always describes a C1/C2 replicated-lane design, which is what the
TyTra compiler generates.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.compiler.lanescale import LaneFamilyHandle
from repro.compiler.pipeline import CompilationOptions
from repro.functional.typetrans import valid_lane_counts
from repro.ir.functions import Module
from repro.kernels.base import ScientificKernel
from repro.models.execution import KernelInstance
from repro.models.memory_execution import MemoryExecutionForm
from repro.models.streaming import PatternKind
from repro.substrate.fpga_device import FPGADevice, MAIA_STRATIX_V_GSD8

__all__ = [
    "DesignPoint",
    "DesignSpace",
    "DenseGrid",
    "CostJob",
    "build_jobs",
    "iter_jobs",
    "linspace_clocks",
    "clock_range",
]


def _form_value(form: str | MemoryExecutionForm) -> str:
    return form.value if isinstance(form, MemoryExecutionForm) else str(form)


@dataclass(frozen=True)
class DesignPoint:
    """One coordinate of a multi-axis design space, ready to be costed."""

    kernel: str
    lanes: int
    grid: tuple[int, ...]
    iterations: int
    clock_mhz: float | None = None
    form: str | MemoryExecutionForm = "auto"
    device: FPGADevice = MAIA_STRATIX_V_GSD8
    pattern: PatternKind = PatternKind.CONTIGUOUS

    @property
    def global_size(self) -> int:
        return math.prod(self.grid)

    @property
    def resolved_clock_mhz(self) -> float:
        return self.clock_mhz if self.clock_mhz is not None else self.device.fmax_mhz

    @property
    def label(self) -> str:
        return (
            f"{self.kernel} x{self.lanes} @{self.resolved_clock_mhz:g}MHz "
            f"form={_form_value(self.form)} {self.device.name} {self.pattern.value}"
        )

    def compilation_options(self) -> CompilationOptions:
        """The estimation-session options this point implies."""
        return CompilationOptions(
            device=self.device, clock_mhz=self.clock_mhz, form=_form_value(self.form)
        )

    def family_handle(self, kernel: ScientificKernel | None = None) -> LaneFamilyHandle:
        """The lazy ``(kernel, lanes, grid)`` module recipe this point implies.

        This is the exact recipe :func:`build_jobs` hands the estimation
        pipeline, so a consumer reconstructing the point's compiled
        artifacts (e.g. the cross-validation subsystem rebuilding its
        :class:`~repro.substrate.pipeline_sim.PipelineSpec`) hits the same
        family caches and derives bit-identical analysis products.
        """
        if kernel is None:
            from repro.kernels import get_kernel

            kernel = get_kernel(self.kernel)
        return LaneFamilyHandle(kernel=kernel, lanes=self.lanes, grid=tuple(self.grid))

    def as_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "lanes": self.lanes,
            "grid": list(self.grid),
            "iterations": self.iterations,
            "clock_mhz": self.resolved_clock_mhz,
            "form": _form_value(self.form),
            "device": self.device.name,
            "pattern": self.pattern.value,
        }

    @staticmethod
    def from_variant(record, options: CompilationOptions) -> "DesignPoint":
        """Lift a lane-only :class:`VariantRecord` into the multi-axis space."""
        return DesignPoint(
            kernel=record.kernel,
            lanes=record.lanes,
            grid=tuple(record.workload.ndrange.dims),
            iterations=record.workload.repetitions,
            clock_mhz=options.clock_mhz,
            form=_form_value(options.form),
            device=options.device,
            pattern=PatternKind.CONTIGUOUS,
        )


@dataclass
class DesignSpace:
    """The cartesian product of exploration axes for one kernel/workload.

    Axes left at their defaults contribute a single value, so a lane-only
    space degenerates to the classic Figure-15 sweep.  Lane counts are
    filtered to those for which the order-preserving ``reshapeTo``
    transformation is defined (divisors of the NDRange size).
    """

    kernel: ScientificKernel
    grid: tuple[int, ...] | None = None
    iterations: int | None = None
    lanes: Sequence[int] | None = None
    max_lanes: int = 16
    clocks_mhz: Sequence[float | None] = (None,)
    forms: Sequence[str | MemoryExecutionForm] = ("auto",)
    devices: Sequence[FPGADevice] = field(default_factory=lambda: (MAIA_STRATIX_V_GSD8,))
    patterns: Sequence[PatternKind] = (PatternKind.CONTIGUOUS,)

    def __post_init__(self) -> None:
        if isinstance(self.kernel, str):
            from repro.kernels import get_kernel

            self.kernel = get_kernel(self.kernel)
        if self.grid is None:
            self.grid = self.kernel.default_grid
        if self.iterations is None:
            self.iterations = self.kernel.default_iterations

    def lane_counts(self) -> list[int]:
        size = math.prod(self.grid)
        if self.lanes is not None:
            return [l for l in self.lanes if l > 0 and size % l == 0]
        return valid_lane_counts(size, max_lanes=self.max_lanes)

    def axis_sizes(self) -> dict[str, int]:
        return {
            "lanes": len(self.lane_counts()),
            "clock_mhz": len(tuple(self.clocks_mhz)),
            "form": len(tuple(self.forms)),
            "device": len(tuple(self.devices)),
            "pattern": len(tuple(self.patterns)),
        }

    @property
    def active_axes(self) -> list[str]:
        """The axes along which this space actually varies."""
        return [name for name, size in self.axis_sizes().items() if size > 1]

    def __len__(self) -> int:
        return math.prod(self.axis_sizes().values())

    def iter_points(self):
        """Lazily generate the design points, in deterministic sweep order.

        Incremental consumers (the optimizer loop, partial-grid slices)
        pull from this generator instead of materializing the full
        cartesian product up front; :meth:`points` is its eager form.
        """
        for lanes in self.lane_counts():
            for device in self.devices:
                for clock in self.clocks_mhz:
                    for form in self.forms:
                        for pattern in self.patterns:
                            yield DesignPoint(
                                kernel=self.kernel.name,
                                lanes=lanes,
                                grid=tuple(self.grid),
                                iterations=self.iterations,
                                clock_mhz=clock,
                                form=form,
                                device=device,
                                pattern=PatternKind(pattern),
                            )

    def points(self) -> list[DesignPoint]:
        """All design points, in deterministic sweep order."""
        return list(self.iter_points())

    def subspace(self, **overrides) -> "DesignSpace":
        """A copy of this space with some axes replaced.

        The partial-grid helper behind arm construction (e.g. one
        successive-halving arm per memory-execution form):
        ``space.subspace(forms=("A",))``.
        """
        from dataclasses import replace

        return replace(self, **overrides)


def linspace_clocks(lo: float, hi: float, n: int) -> tuple[float, ...]:
    """A continuous clock axis: ``n`` evenly spaced frequencies in MHz."""
    if n < 1:
        raise ValueError(f"clock axis needs at least one point, got {n}")
    if lo <= 0 or hi <= 0:
        raise ValueError(f"clock frequencies must be positive, got {lo}:{hi}")
    if hi < lo:
        raise ValueError(f"clock range is inverted: {lo} > {hi}")
    return tuple(float(x) for x in np.linspace(lo, hi, n))


def clock_range(spec: str) -> tuple[float, ...]:
    """Parse a ``LO:HI:N`` clock-range spec into a clock axis (MHz)."""
    parts = spec.split(":")
    if len(parts) != 3:
        raise ValueError(
            f"invalid clock range {spec!r}; expected LO:HI:N (e.g. 150:300:64)"
        )
    try:
        lo, hi, n = float(parts[0]), float(parts[1]), int(parts[2])
    except ValueError:
        raise ValueError(
            f"invalid clock range {spec!r}; expected LO:HI:N (e.g. 150:300:64)"
        ) from None
    return linspace_clocks(lo, hi, n)


@dataclass(frozen=True)
class DenseGrid:
    """A :class:`DesignSpace` lowered to indexable axis tuples.

    The dense evaluation path addresses points by axis coordinates
    instead of enumerating :class:`DesignPoint` objects; this is the
    bridge between the two — ``point(...)`` reconstructs exactly the
    design point :meth:`DesignSpace.points` would have produced at the
    same sweep position, and ``flat_index``/``coords`` map between the
    sweep order (lanes, device, clock, form, pattern — slowest to
    fastest) and array coordinates.
    """

    kernel: str
    grid: tuple[int, ...]
    iterations: int
    lanes: tuple[int, ...]
    devices: tuple[FPGADevice, ...]
    clocks: tuple[float | None, ...]
    forms: tuple[str | MemoryExecutionForm, ...]
    patterns: tuple[PatternKind, ...]

    @classmethod
    def from_space(cls, space: "DesignSpace") -> "DenseGrid":
        return cls(
            kernel=space.kernel.name,
            grid=tuple(space.grid),
            iterations=space.iterations,
            lanes=tuple(space.lane_counts()),
            devices=tuple(space.devices),
            clocks=tuple(space.clocks_mhz),
            forms=tuple(space.forms),
            patterns=tuple(PatternKind(p) for p in space.patterns),
        )

    @property
    def shape(self) -> tuple[int, int, int, int, int]:
        return (len(self.lanes), len(self.devices), len(self.clocks),
                len(self.forms), len(self.patterns))

    def __len__(self) -> int:
        return math.prod(self.shape)

    def flat_index(self, li: int, di: int, ci: int, fi: int, pi: int) -> int:
        _, d, c, f, p = self.shape
        return ((((li * d + di) * c + ci) * f + fi) * p + pi)

    def coords(self, flat: int) -> tuple[int, int, int, int, int]:
        _, d, c, f, p = self.shape
        flat, pi = divmod(flat, p)
        flat, fi = divmod(flat, f)
        flat, ci = divmod(flat, c)
        li, di = divmod(flat, d)
        return li, di, ci, fi, pi

    def point(self, li: int, di: int, ci: int, fi: int, pi: int) -> DesignPoint:
        return DesignPoint(
            kernel=self.kernel,
            lanes=self.lanes[li],
            grid=self.grid,
            iterations=self.iterations,
            clock_mhz=self.clocks[ci],
            form=self.forms[fi],
            device=self.devices[di],
            pattern=self.patterns[pi],
        )

    def resolved_clocks(self, device: FPGADevice) -> list[float]:
        """The clock axis in MHz with ``None`` resolved to device fmax."""
        return [float(c) if c is not None else float(device.fmax_mhz)
                for c in self.clocks]


@dataclass(frozen=True)
class CostJob:
    """One design point together with its (possibly lazy) IR and workload.

    ``module`` is either a lowered :class:`~repro.ir.functions.Module` or
    a :class:`~repro.compiler.lanescale.LaneFamilyHandle` — a pickle-safe
    ``(kernel, lanes, grid)`` recipe the estimation pipeline lowers only
    when the design family is cold or not lane-separable.

    ``options`` overrides the options the point itself implies — the
    bridge for callers (e.g. the classic lane-sweep searches) whose
    compiler carries injected cost databases, custom synthesis noise or a
    custom latency model that a bare :class:`DesignPoint` cannot express.
    """

    point: DesignPoint
    module: Module | LaneFamilyHandle
    workload: KernelInstance
    options: CompilationOptions | None = None

    def resolved_options(self) -> CompilationOptions:
        return self.options if self.options is not None else self.point.compilation_options()


def iter_jobs(space: DesignSpace, lazy: bool = True):
    """Lazily lower a design space into cost jobs.

    Modules depend only on (kernel, lanes, grid), so one module — by
    default a lazy :class:`~repro.compiler.lanescale.LaneFamilyHandle`
    recipe — is shared by every point along the clock/form/device/pattern
    axes.  With ``lazy=False`` every lane count is eagerly lowered, which
    is what an N-point sweep used to pay; the estimation pipeline produces
    bit-identical reports either way.

    A generator: an incremental consumer costing the grid in slices never
    materializes jobs ahead of the round that needs them.
    """
    kernel = space.kernel
    workload = kernel.workload(tuple(space.grid), space.iterations)
    modules: dict[int, Module | LaneFamilyHandle] = {}
    for point in space.iter_points():
        module = modules.get(point.lanes)
        if module is None:
            if lazy:
                module = point.family_handle(kernel)
            else:
                module = kernel.build_module(lanes=point.lanes, grid=tuple(space.grid))
            modules[point.lanes] = module
        yield CostJob(point=point, module=module, workload=workload)


def build_jobs(space: DesignSpace, lazy: bool = True) -> list[CostJob]:
    """Eagerly lower a design space into cost jobs (see :func:`iter_jobs`)."""
    return list(iter_jobs(space, lazy=lazy))
