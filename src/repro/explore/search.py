"""Exploration strategies over variant families and design spaces.

The cost model's speed (well under a second per variant) makes an
exhaustive sweep over lane counts practical; the guided search additionally
uses the *limiting factor* the cost model exposes to stop expanding an axis
once it stops paying off — the targeted-optimisation loop the paper
anticipates for its compiler feedback path.  Both are now thin strategies
over the batched :class:`~repro.explore.engine.ExplorationEngine`, which
also powers the multi-axis :func:`pareto_search`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.driver import TybecCompiler
from repro.cost.report import CostReport
from repro.cost.throughput import LimitingFactor
from repro.explore.engine import (
    ExplorationEngine,
    SerialBackend,
    SweepEntry,
    SweepResult,
)
from repro.explore.space import CostJob, DesignPoint, DesignSpace
from repro.explore.variants import VariantRecord

__all__ = ["ExplorationResult", "exhaustive_search", "guided_search", "pareto_search"]


@dataclass
class ExplorationResult:
    """Outcome of exploring a variant family."""

    kernel: str
    reports: dict[int, CostReport] = field(default_factory=dict)
    #: lanes of the best feasible variant (None when nothing fits)
    best_lanes: int | None = None
    #: total wall-clock seconds spent estimating (all variants together)
    estimation_seconds: float = 0.0
    evaluated: int = 0

    @property
    def best_report(self) -> CostReport | None:
        if self.best_lanes is None:
            return None
        return self.reports[self.best_lanes]

    def feasible_lanes(self) -> list[int]:
        return sorted(l for l, r in self.reports.items() if r.feasible)

    def summary_rows(self) -> list[dict]:
        """One row per variant: the data behind a Figure-15 style plot."""
        rows = []
        for lanes in sorted(self.reports):
            report = self.reports[lanes]
            util = report.utilization
            rows.append(
                {
                    "lanes": lanes,
                    "ewgt_per_s": report.throughput.ewgt,
                    "alut_pct": util["alut"] * 100,
                    "reg_pct": util["reg"] * 100,
                    "bram_pct": util["bram_bits"] * 100,
                    "dsp_pct": util["dsp"] * 100,
                    "limiting_factor": report.limiting_factor.value,
                    "feasible": report.feasible,
                }
            )
        return rows


def _select_best(result: ExplorationResult) -> None:
    feasible = [(lanes, r) for lanes, r in result.reports.items() if r.feasible]
    if feasible:
        result.best_lanes = max(feasible, key=lambda item: item[1].ekit)[0]


def _lane_jobs(compiler: TybecCompiler, variants: list[VariantRecord]) -> list[CostJob]:
    # carry the compiler's actual options, not just what the design point
    # can express: injected cost databases, custom synthesis noise and
    # latency models must survive the trip through the engine
    return [
        CostJob(
            point=DesignPoint.from_variant(variant, compiler.options),
            module=variant.module,
            workload=variant.workload,
            options=compiler.options,
        )
        for variant in variants
    ]


def _to_lane_result(kernel: str, sweep: SweepResult) -> ExplorationResult:
    result = ExplorationResult(kernel=kernel)
    for entry in sweep.entries:
        result.reports[entry.point.lanes] = entry.report
    result.estimation_seconds = sweep.estimation_seconds
    result.evaluated = sweep.evaluated
    _select_best(result)
    return result


def exhaustive_search(
    compiler: TybecCompiler,
    variants: list[VariantRecord],
    *,
    backend=None,
) -> ExplorationResult:
    """Cost every variant and pick the fastest feasible one.

    A thin strategy over the exploration engine: by default the variants
    run serially through the compiler's own memoizing pipeline; pass an
    evaluation backend (e.g. a ``ProcessPoolBackend``) to fan the sweep
    out.
    """
    if not variants:
        raise ValueError("no variants to explore")
    engine = ExplorationEngine(backend or SerialBackend(pipeline=compiler.pipeline))
    sweep = engine.cost_many(_lane_jobs(compiler, variants))
    return _to_lane_result(variants[0].kernel, sweep)


def guided_search(
    compiler: TybecCompiler,
    variants: list[VariantRecord],
    *,
    min_gain: float = 1.05,
) -> ExplorationResult:
    """Walk lane counts upward until a wall is hit.

    The search evaluates variants in increasing lane order and stops when
    either (a) the variant no longer fits the device (the computation
    wall), or (b) throughput improves by less than ``min_gain`` over the
    previous variant while the limiting factor is a communication wall —
    adding lanes cannot help a bandwidth-bound design.  Inherently
    sequential (each step decides whether to take the next), so it always
    runs in-process — but through the memoizing pipeline, so re-walks of a
    family are cheap.
    """
    if not variants:
        raise ValueError("no variants to explore")
    ordered = sorted(variants, key=lambda v: v.lanes)
    result = ExplorationResult(kernel=ordered[0].kernel)
    previous_ekit = 0.0
    for variant in ordered:
        report = compiler.cost(variant.module, variant.workload)
        result.reports[variant.lanes] = report
        result.estimation_seconds += report.estimation_seconds
        result.evaluated += 1
        if not report.feasibility.fits_resources:
            break  # computation wall
        bandwidth_bound = report.limiting_factor in (
            LimitingFactor.HOST_BANDWIDTH,
            LimitingFactor.DRAM_BANDWIDTH,
        )
        if previous_ekit > 0 and report.ekit < previous_ekit * min_gain and bandwidth_bound:
            break  # communication wall: wider designs stop paying off
        previous_ekit = report.ekit
    _select_best(result)
    return result


def pareto_search(
    space: DesignSpace,
    *,
    engine: ExplorationEngine | None = None,
    objectives=None,
) -> tuple[SweepResult, list[SweepEntry]]:
    """Cost a multi-axis design space and return its Pareto frontier.

    Where the single-axis searches pick one winner, a multi-axis sweep has
    a *frontier*: no point on it is beaten on every objective at once
    (by default: EKIT throughput up, limiting resource utilisation down).
    Returns the full sweep result plus the non-dominated entries.
    """
    engine = engine or ExplorationEngine()
    sweep = engine.explore(space)
    return sweep, sweep.pareto_frontier(objectives)
