"""Exploration strategies over variant families and design spaces.

Every strategy here is now a thin shim over the incremental
:class:`~repro.explore.optimizer.Optimizer` loop — the bespoke
per-strategy sweep code is gone.  ``exhaustive_search`` drives an
:class:`~repro.explore.optimizer.ExhaustiveOptimizer` through the
engine, ``guided_search`` drives a
:class:`~repro.explore.optimizer.GuidedLaneOptimizer` through the
caller's compiler (the wall-following loop the paper anticipates for its
compiler feedback path), and ``pareto_search`` post-processes an
optimizer-driven sweep into its frontier.  The public signatures are
kept verbatim for existing callers; new code should construct optimizers
directly and run them with
:meth:`~repro.explore.engine.ExplorationEngine.run_optimizer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.driver import TybecCompiler
from repro.cost.report import CostReport
from repro.explore.engine import (
    ExplorationEngine,
    SerialBackend,
    SweepEntry,
    SweepResult,
)
from repro.explore.optimizer import (
    ExhaustiveOptimizer,
    GuidedLaneOptimizer,
    drive_optimizer,
)
from repro.explore.space import CostJob, DesignPoint, DesignSpace
from repro.explore.variants import VariantRecord

__all__ = ["ExplorationResult", "exhaustive_search", "guided_search", "pareto_search"]


@dataclass
class ExplorationResult:
    """Outcome of exploring a variant family."""

    kernel: str
    reports: dict[int, CostReport] = field(default_factory=dict)
    #: lanes of the best feasible variant (None when nothing fits)
    best_lanes: int | None = None
    #: total wall-clock seconds spent estimating (all variants together)
    estimation_seconds: float = 0.0
    evaluated: int = 0

    @property
    def best_report(self) -> CostReport | None:
        if self.best_lanes is None:
            return None
        return self.reports[self.best_lanes]

    def feasible_lanes(self) -> list[int]:
        return sorted(l for l, r in self.reports.items() if r.feasible)

    def summary_rows(self) -> list[dict]:
        """One row per variant: the data behind a Figure-15 style plot."""
        rows = []
        for lanes in sorted(self.reports):
            report = self.reports[lanes]
            util = report.utilization
            rows.append(
                {
                    "lanes": lanes,
                    "ewgt_per_s": report.throughput.ewgt,
                    "alut_pct": util["alut"] * 100,
                    "reg_pct": util["reg"] * 100,
                    "bram_pct": util["bram_bits"] * 100,
                    "dsp_pct": util["dsp"] * 100,
                    "limiting_factor": report.limiting_factor.value,
                    "feasible": report.feasible,
                }
            )
        return rows


def _select_best(result: ExplorationResult) -> None:
    feasible = [(lanes, r) for lanes, r in result.reports.items() if r.feasible]
    if feasible:
        result.best_lanes = max(feasible, key=lambda item: item[1].ekit)[0]


def _lane_jobs(compiler: TybecCompiler, variants: list[VariantRecord]) -> list[CostJob]:
    # carry the compiler's actual options, not just what the design point
    # can express: injected cost databases, custom synthesis noise and
    # latency models must survive the trip through the engine
    return [
        CostJob(
            point=DesignPoint.from_variant(variant, compiler.options),
            module=variant.module,
            workload=variant.workload,
            options=compiler.options,
        )
        for variant in variants
    ]


def _to_lane_result(kernel: str, sweep: SweepResult) -> ExplorationResult:
    result = ExplorationResult(kernel=kernel)
    for entry in sweep.entries:
        result.reports[entry.point.lanes] = entry.report
    result.estimation_seconds = sweep.estimation_seconds
    result.evaluated = sweep.evaluated
    _select_best(result)
    return result


def exhaustive_search(
    compiler: TybecCompiler,
    variants: list[VariantRecord],
    *,
    backend=None,
) -> ExplorationResult:
    """Cost every variant and pick the fastest feasible one.

    Deprecated shim: drives an
    :class:`~repro.explore.optimizer.ExhaustiveOptimizer` over the
    prebuilt variant jobs.  By default the variants run serially through
    the compiler's own memoizing pipeline; pass an evaluation backend
    (e.g. a ``ProcessPoolBackend``) to fan the sweep out.
    """
    if not variants:
        raise ValueError("no variants to explore")
    engine = ExplorationEngine(backend or SerialBackend(pipeline=compiler.pipeline))
    run = engine.run_optimizer(
        ExhaustiveOptimizer(jobs=_lane_jobs(compiler, variants)))
    return _to_lane_result(variants[0].kernel, run.sweep())


def guided_search(
    compiler: TybecCompiler,
    variants: list[VariantRecord],
    *,
    min_gain: float = 1.05,
) -> ExplorationResult:
    """Walk lane counts upward until a wall is hit.

    Deprecated shim: drives a
    :class:`~repro.explore.optimizer.GuidedLaneOptimizer`, which stops
    when either (a) the variant no longer fits the device (the
    computation wall), or (b) throughput improves by less than
    ``min_gain`` over the previous variant while the limiting factor is a
    communication wall — adding lanes cannot help a bandwidth-bound
    design.  Inherently sequential (each outcome decides the next
    proposal), so the loop evaluates directly through the caller's
    compiler — injected models, memoized pipeline and all.
    """
    optimizer = GuidedLaneOptimizer(
        variants, min_gain=min_gain,
        options=getattr(compiler, "options", None))

    def evaluate(points):
        entries = []
        for point in points:
            variant = optimizer.variant_for(point)
            entries.append(
                SweepEntry(point, compiler.cost(variant.module, variant.workload)))
        return entries

    drive_optimizer(optimizer, evaluate)
    result = ExplorationResult(kernel=optimizer.kernel)
    for entry in optimizer.entries:
        result.reports[entry.point.lanes] = entry.report
        result.estimation_seconds += entry.report.estimation_seconds
    result.evaluated = len(optimizer.entries)
    _select_best(result)
    return result


def pareto_search(
    space: DesignSpace,
    *,
    engine: ExplorationEngine | None = None,
    objectives=None,
) -> tuple[SweepResult, list[SweepEntry]]:
    """Cost a multi-axis design space and return its Pareto frontier.

    Deprecated shim over the optimizer-driven
    :meth:`~repro.explore.engine.ExplorationEngine.explore`.  Where the
    single-axis searches pick one winner, a multi-axis sweep has a
    *frontier*: no point on it is beaten on every objective at once
    (by default: EKIT throughput up, limiting resource utilisation down).
    Returns the full sweep result plus the non-dominated entries.
    """
    engine = engine or ExplorationEngine()
    sweep = engine.explore(space)
    return sweep, sweep.pareto_frontier(objectives)
