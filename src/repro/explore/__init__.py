"""Design-space exploration built on the cost model.

This package implements the use-case the paper motivates: generate many
design variants by type transformations, cost each one in a fraction of a
second, and select the best feasible design — the guided optimisation
search of §II, and the variant sweep of Figure 15 — generalised to
multi-axis design spaces evaluated in parallel.

``space``
    Multi-axis design spaces (lanes x clock x memory-execution form x
    device x access pattern) and their lowering into cost jobs.
``engine``
    The batched exploration engine: serial and process-pool evaluation
    backends, ``cost_many`` and sweep results with Pareto selection.
``optimizer``
    Incremental exploration: the ``Optimizer`` protocol
    (``next_batch``/``process_outcome``) and the exhaustive, fmax
    binary-search, successive-halving and surrogate-pruned optimizers the
    engine's driver loop runs.
``variants``
    Generation of lane-count variant families for a kernel.
``search``
    Exhaustive, guided (wall-following) and Pareto-frontier searches over
    variants using the TyBEC compiler's cost reports (thin shims over the
    optimizer loop).
``roofline``
    A roofline-style view of variants (operational intensity vs attainable
    performance), following the paper's pointer to the FPGA roofline
    extension of da Silva et al.
"""

from repro.cost.vector import DenseUnsupportedError, pareto_mask
from repro.explore.variants import VariantRecord, generate_lane_variants, sweep_lane_counts
from repro.explore.space import (
    CostJob,
    DenseGrid,
    DesignPoint,
    DesignSpace,
    build_jobs,
    clock_range,
    iter_jobs,
    linspace_clocks,
)
from repro.explore.engine import (
    ExplorationEngine,
    ProcessPoolBackend,
    SerialBackend,
    SweepEntry,
    SweepResult,
    canonical_report_dict,
    merge_stats,
    pareto_frontier,
)
from repro.explore.dense import DenseBackend, DenseSweep
from repro.explore.optimizer import (
    OPTIMIZERS,
    ExhaustiveOptimizer,
    FmaxBinarySearchOptimizer,
    GuidedLaneOptimizer,
    JobFactory,
    Optimizer,
    OptimizerRound,
    OptimizerRun,
    SuccessiveHalvingOptimizer,
    SurrogatePrunedOptimizer,
    drive_optimizer,
)
from repro.explore.search import (
    ExplorationResult,
    exhaustive_search,
    guided_search,
    pareto_search,
)
from repro.explore.roofline import RooflinePoint, roofline_analysis
from repro.explore.case_study import CaseStudyConfig, CaseStudyPoint, run_sor_case_study

__all__ = [
    "DenseBackend",
    "DenseGrid",
    "DenseSweep",
    "DenseUnsupportedError",
    "clock_range",
    "linspace_clocks",
    "pareto_mask",
    "VariantRecord",
    "generate_lane_variants",
    "sweep_lane_counts",
    "CostJob",
    "DesignPoint",
    "DesignSpace",
    "build_jobs",
    "iter_jobs",
    "OPTIMIZERS",
    "Optimizer",
    "OptimizerRound",
    "OptimizerRun",
    "JobFactory",
    "drive_optimizer",
    "ExhaustiveOptimizer",
    "FmaxBinarySearchOptimizer",
    "GuidedLaneOptimizer",
    "SuccessiveHalvingOptimizer",
    "SurrogatePrunedOptimizer",
    "ExplorationEngine",
    "ProcessPoolBackend",
    "SerialBackend",
    "SweepEntry",
    "SweepResult",
    "canonical_report_dict",
    "merge_stats",
    "pareto_frontier",
    "ExplorationResult",
    "exhaustive_search",
    "guided_search",
    "pareto_search",
    "RooflinePoint",
    "roofline_analysis",
    "CaseStudyConfig",
    "CaseStudyPoint",
    "run_sor_case_study",
]
