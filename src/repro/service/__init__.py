"""The exploration service: shared warm caches behind an HTTP daemon.

One long-lived process owns one warm set of estimation caches;
concurrent clients POST ``.tirl`` designs or suite grid specs, identical
in-flight requests coalesce onto one underlying sweep, and results
stream back as canonical NDJSON.  See :mod:`repro.service.server` for
the endpoint contract and :mod:`repro.service.client` for the stdlib
client.
"""

from repro.service.client import ServiceClient, ServiceError, ServiceResponse
from repro.service.coalesce import CoalescedTask, RequestCoalescer, TaskFailedError
from repro.service.server import (
    DEFAULT_PORT,
    BadRequestError,
    ExplorationService,
    ServiceServer,
    serve,
    suite_config_from_spec,
)

__all__ = [
    "BadRequestError",
    "CoalescedTask",
    "DEFAULT_PORT",
    "ExplorationService",
    "RequestCoalescer",
    "ServiceClient",
    "ServiceError",
    "ServiceResponse",
    "ServiceServer",
    "TaskFailedError",
    "serve",
    "suite_config_from_spec",
]
