"""The exploration service: a persistent daemon in front of the caches.

The cost model answers in milliseconds once its caches are warm — but a
fresh CLI process pays calibration and family analysis on every
invocation, and concurrent batch jobs each warm a private copy of the
same state.  The service inverts that: one long-lived process owns one
warm set of caches (calibration artifacts, design families, session
pipelines, dense sweep vectors) and every client shares them.

Endpoints (all JSON):

``POST /suite``
    Body: a :class:`~repro.suite.runner.SuiteConfig` spec (same fields
    as ``tybec suite run``; plus ``"dense": true`` for the broadcast
    evaluator and ``"tiny": true`` for the smoke grids).  Streams NDJSON
    — one ``entry`` event per costed design point as it completes, then
    one final ``report`` event whose payload is the *byte-identical*
    canonical ``repro-suite-report/1`` a batch run would produce.

``POST /cost``
    Body: ``{"design": "<.tirl text>", "device": ..., "grid": [...],
    "iterations": N, "pattern": ...}``.  One ``report`` event with the
    canonical cost report.

``GET /metrics``
    Cache hit/miss counters, queue depth, in-flight coalesce counts and
    per-stage timings.

``GET /healthz``
    Liveness probe.

Identical in-flight requests are coalesced on their content fingerprint
(the module hash for ``/cost``, the canonical configuration for
``/suite``): one underlying sweep runs, every client streams it, and a
bounded results cache replays recently-completed sweeps so the guarantee
does not depend on microsecond arrival order.  A semaphore bounds
concurrent sweeps; waiters are the reported queue depth.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import threading
import time
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.compiler.pipeline import CompilationOptions, EstimationPipeline
from repro.obs.logs import get_logger, log_event
from repro.obs.metrics import MetricsRegistry, samples_from_service_metrics
from repro.obs.trace import span as trace_span
from repro.explore.dense import DenseBackend
from repro.explore.engine import (
    SerialBackend,
    SweepEntry,
    SweepResult,
    canonical_report_dict,
    merge_stats,
)
from repro.models import KernelInstance, NDRange, PatternKind
from repro.resilience import (
    COUNTERS,
    Deadline,
    RetryPolicy,
    current_fault_plan,
    is_transient,
    maybe_fail,
)
from repro.service.coalesce import CoalescedTask, RequestCoalescer
from repro.substrate import get_device
from repro.suite.report import canonical_json, canonical_json_line
from repro.suite.runner import (
    SuiteConfig,
    WorkloadSuite,
    build_suite_report,
    resolve_dse_params,
    run_dse,
)

__all__ = [
    "BadRequestError",
    "ExplorationService",
    "ServiceServer",
    "serve",
    "suite_config_from_spec",
]

DEFAULT_PORT = 8731

#: request header that carries a client's trace id into the service (and
#: is stamped back onto every NDJSON event of the response stream)
TRACE_HEADER = "X-Tybec-Trace"

#: endpoints with their own latency-histogram label; anything else is
#: folded into "other" so hostile paths cannot explode label cardinality
_KNOWN_ENDPOINTS = ("/healthz", "/metrics", "/suite", "/dse", "/cost")

_LOG = get_logger("service")
_ACCESS_LOG = get_logger("service.access")


class BadRequestError(ValueError):
    """A malformed or unsatisfiable request body (HTTP 400)."""


def suite_config_from_spec(spec: dict) -> SuiteConfig:
    """Build a :class:`SuiteConfig` from a request body.

    Mirrors the ``tybec suite run`` flag handling: ``"tiny": true``
    starts from the golden smoke configuration, every other field
    overrides the corresponding config axis.  Unknown fields are an
    error — a typo must not silently cost a different grid.
    """
    spec = dict(spec)
    tiny = bool(spec.pop("tiny", False))
    known = {f.name for f in dataclasses.fields(SuiteConfig)}
    unknown = sorted(set(spec) - known)
    if unknown:
        raise BadRequestError(
            f"unknown suite field(s) {unknown}; known: {sorted(known)} "
            f"(plus 'tiny' and 'dense')"
        )
    for name in ("kernels", "devices", "forms", "patterns", "clocks_mhz"):
        if name in spec and spec[name] is not None:
            spec[name] = tuple(spec[name])
    if spec.get("lanes") is not None:
        spec["lanes"] = tuple(spec["lanes"])
    if "grids" in spec:
        spec["grids"] = {k: tuple(v) for k, v in dict(spec["grids"]).items()}
    try:
        if tiny:
            config = SuiteConfig.tiny(
                kernels=spec.pop("kernels", ()),
                devices=spec.pop("devices", ("stratix-v",)),
                max_lanes=spec.pop("max_lanes", 4),
            )
            config = dataclasses.replace(config, **spec) if spec else config
        else:
            config = SuiteConfig(**spec)
        config.resolved_kernels()          # validate kernel names now
        for device in config.devices:      # and device names
            get_device(device)
    except (KeyError, ValueError, TypeError) as exc:
        raise BadRequestError(str(exc.args[0] if exc.args else exc)) from exc
    return config


def _fingerprint(kind: str, payload: dict) -> str:
    """The content fingerprint identical requests coalesce on."""
    body = canonical_json({"kind": kind, **payload})
    return hashlib.sha256(body.encode()).hexdigest()


class ExplorationService:
    """The shared warm state plus the request coalescer behind the HTTP
    front end (usable directly, without any socket, for tests)."""

    #: backoff schedule between leadership claims on the same task, so a
    #: repeatedly-failing sweep does not hot-spin through its claim budget
    leader_retry_policy = RetryPolicy(max_attempts=CoalescedTask.MAX_LEADER_CLAIMS,
                                      base_delay=0.02, max_delay=0.5)

    def __init__(self, max_concurrency: int = 4, results_capacity: int = 64,
                 default_deadline_seconds: float | None = None):
        self.max_concurrency = max(1, max_concurrency)
        #: per-request compute budget when the body names none
        self.default_deadline_seconds = default_deadline_seconds
        self._backend = SerialBackend()
        self._dense = DenseBackend()
        self.coalescer = RequestCoalescer(results_capacity=results_capacity)
        self._pipelines: dict[str, EstimationPipeline] = {}
        self._lock = threading.Lock()
        self._gate = threading.Semaphore(self.max_concurrency)
        self._queued = 0
        self._active = 0
        self.started = time.time()
        self.requests = {"cost": 0, "suite": 0, "dse": 0, "metrics": 0,
                         "errors": 0}
        self.sweeps = {"started": 0, "completed": 0}
        #: the one registry every stat surface is exposed through; the
        #: JSON ``/metrics`` payload keeps its shape, and the Prometheus
        #: rendering adapts that same payload at scrape time
        self.registry = MetricsRegistry()
        self.request_seconds = self.registry.histogram(
            "tybec_request_seconds",
            "HTTP request latency by endpoint and status.",
            labelnames=("endpoint", "status"),
        )
        self.registry.register_collector(
            lambda: samples_from_service_metrics(self.metrics())
        )

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def count_request(self, endpoint: str) -> None:
        with self._lock:
            self.requests[endpoint] = self.requests.get(endpoint, 0) + 1

    def observe_request(self, endpoint: str, status: int, seconds: float) -> None:
        """Feed one finished HTTP request into the latency histogram."""
        if endpoint not in _KNOWN_ENDPOINTS:
            endpoint = "other"
        self.request_seconds.labels(
            endpoint=endpoint, status=str(status)).observe(seconds)

    def prometheus_metrics(self) -> str:
        """The ``/metrics?format=prometheus`` text exposition."""
        return self.registry.render_prometheus()

    @contextmanager
    def _slot(self):
        """Backpressure: bounded concurrent sweeps, waiters = queue depth."""
        with self._lock:
            self._queued += 1
        self._gate.acquire()
        with self._lock:
            self._queued -= 1
            self._active += 1
        try:
            yield
        finally:
            with self._lock:
                self._active -= 1
            self._gate.release()

    def metrics(self) -> dict:
        """The ``/metrics`` payload: queue, coalescing and cache health."""
        with self._lock:
            requests = dict(self.requests)
            sweeps = dict(self.sweeps)
            queued, active = self._queued, self._active
            pipelines = list(self._pipelines.values())
        stats = merge_stats(
            [self._backend.collect_stats(), self._dense.collect_stats()]
            + [p.stats.as_dict() for p in pipelines]
        )
        disk = None
        from repro.cost.cache import default_disk_cache

        cache = default_disk_cache()
        if cache is not None:
            disk = cache.stats()
        plan = current_fault_plan()
        return {
            "uptime_seconds": time.time() - self.started,
            "requests": requests,
            "sweeps": sweeps,
            "resilience": {
                "counters": COUNTERS.snapshot(),
                "fault_plan": None if plan is None else plan.stats(),
            },
            "queue": {
                "depth": queued,
                "active": active,
                "capacity": self.max_concurrency,
            },
            "coalesce": self.coalescer.info(),
            "pipeline": stats,
            "disk_cache": disk,
        }

    # ------------------------------------------------------------------
    # /cost — one design variant
    # ------------------------------------------------------------------
    def _pipeline_for_device(self, device_name: str) -> EstimationPipeline:
        with self._lock:
            pipeline = self._pipelines.get(device_name)
            if pipeline is None:
                options = CompilationOptions(device=get_device(device_name))
                pipeline = self._pipelines[device_name] = EstimationPipeline(options)
            return pipeline

    def lease_cost(self, spec: dict) -> tuple[CoalescedTask, str, dict]:
        """Parse a ``/cost`` body; lease its coalesced task.

        Returns ``(task, role, request)`` where ``request`` carries the
        parsed module and workload a leader needs to compute.
        """
        if not isinstance(spec, dict) or "design" not in spec:
            raise BadRequestError("body must be a JSON object with a 'design' "
                                  "field holding the .tirl text")
        spec = dict(spec)
        # popped before fingerprinting: the same work coalesces whatever
        # budgets the individual clients brought (budgets cannot change
        # report bytes, so sharing the computation stays sound)
        deadline_seconds = spec.pop("deadline_seconds", None)
        device = str(spec.get("device", "stratix-v"))
        grid = tuple(int(d) for d in spec.get("grid", (24, 24, 24)))
        iterations = int(spec.get("iterations", 1000))
        pattern = str(spec.get("pattern", "contiguous"))
        name = str(spec.get("name", "design"))
        try:
            get_device(device)
            pattern_kind = PatternKind(pattern)
            from repro.compiler import TybecCompiler

            module = TybecCompiler(CompilationOptions()).parse(
                spec["design"], name=name)
        except Exception as exc:
            raise BadRequestError(str(exc.args[0] if exc.args else exc)) from exc
        key = _fingerprint("cost", {
            "module": module.content_fingerprint(),
            "device": device,
            "grid": list(grid),
            "iterations": iterations,
            "pattern": pattern,
        })
        task, role = self.coalescer.lease(key)
        request = {
            "module": module,
            "device": device,
            "workload": KernelInstance(kernel=module.name, ndrange=NDRange(grid),
                                       repetitions=iterations),
            "pattern": pattern_kind,
            "deadline_seconds": deadline_seconds,
        }
        return task, role, request

    def _deadline_for(self, request: dict) -> Deadline:
        """A fresh per-attempt budget (a promoted leader starts over)."""
        seconds = request.get("deadline_seconds")
        if seconds is None:
            seconds = self.default_deadline_seconds
        return Deadline(float(seconds)) if seconds else Deadline.none()

    def run_cost(self, request: dict) -> dict:
        """Leader path of one ``/cost`` request: cost the variant."""
        deadline = self._deadline_for(request)
        with self._slot():
            deadline.check("cost request queued too long")
            maybe_fail("service.handler")
            pipeline = self._pipeline_for_device(request["device"])
            report = pipeline.cost(request["module"], request["workload"],
                                   request["pattern"])
        return {
            "event": "report",
            "kind": "cost",
            "payload": canonical_report_dict(report),
        }

    # ------------------------------------------------------------------
    # /suite — a whole sweep grid
    # ------------------------------------------------------------------
    def lease_suite(self, spec: dict) -> tuple[CoalescedTask, str, dict]:
        """Parse a ``/suite`` body; lease its coalesced task."""
        if not isinstance(spec, dict):
            raise BadRequestError("body must be a JSON object")
        spec = dict(spec)
        dense = bool(spec.pop("dense", False))
        # popped before fingerprinting — see :meth:`lease_cost`
        deadline_seconds = spec.pop("deadline_seconds", None)
        config = suite_config_from_spec(spec)
        key = _fingerprint("suite", {"config": config.as_dict(), "dense": dense})
        task, role = self.coalescer.lease(key)
        return task, role, {"config": config, "dense": dense,
                            "deadline_seconds": deadline_seconds}

    def run_suite(self, request: dict, publish) -> dict:
        """Leader path of one ``/suite`` request.

        Streams one ``entry`` event per costed point through ``publish``
        (points land in deterministic sweep order), then returns the
        final ``report`` event.  The report payload goes through
        :func:`~repro.suite.runner.build_suite_report`, so it is
        byte-identical to what ``WorkloadSuite.run()`` — and therefore
        ``tybec suite run`` — produces for the same configuration.
        """
        config: SuiteConfig = request["config"]
        backend = self._dense if request["dense"] else self._backend
        deadline = self._deadline_for(request)
        with self._slot():
            deadline.check("suite request queued too long")
            maybe_fail("service.handler")
            with self._lock:
                self.sweeps["started"] += 1
            suite = WorkloadSuite(config, backend=backend)
            if request["dense"]:
                spaces, sweep = suite.sweep(deadline=deadline)
                for index, entry in enumerate(sweep.entries):
                    publish(self._entry_event(index, entry))
            else:
                spaces = suite.spaces()
                jobs = suite.jobs(spaces)
                if not jobs:
                    raise BadRequestError(
                        "suite has no design points (no valid lane counts "
                        "for the configured grids?)"
                    )
                started = time.perf_counter()

                def _progress(index: int, report) -> None:
                    publish(self._entry_event(
                        index, SweepEntry(jobs[index].point, report)))

                reports = self._backend.run(jobs, progress=_progress,
                                            deadline=deadline)
                sweep = SweepResult(
                    entries=[SweepEntry(job.point, report)
                             for job, report in zip(jobs, reports)],
                    wall_seconds=time.perf_counter() - started,
                    stats=self._backend.collect_stats(),
                )
            report = build_suite_report(config, spaces, sweep)
            with self._lock:
                self.sweeps["completed"] += 1
        return {
            "event": "report",
            "kind": "suite",
            "payload": report.canonical_dict(),
            "evaluated": sweep.evaluated,
        }

    @staticmethod
    def _entry_event(index: int, entry: SweepEntry) -> dict:
        return {"event": "entry", "index": index, **entry.as_dict()}

    # ------------------------------------------------------------------
    # /dse — optimizer-driven design-space exploration
    # ------------------------------------------------------------------
    def lease_dse(self, spec: dict) -> tuple[CoalescedTask, str, dict]:
        """Parse a ``/dse`` body; lease its coalesced task.

        The body is a suite spec plus ``optimizer`` (name, default
        ``"fmax"``) and ``params`` (optimizer knobs).  The fingerprint
        covers the *resolved* parameters, so two requests differing only
        in an omitted default coalesce onto the same search.
        """
        if not isinstance(spec, dict):
            raise BadRequestError("body must be a JSON object")
        spec = dict(spec)
        # popped before fingerprinting — see :meth:`lease_cost`
        deadline_seconds = spec.pop("deadline_seconds", None)
        optimizer = spec.pop("optimizer", "fmax")
        raw_params = spec.pop("params", None)
        if not isinstance(optimizer, str):
            raise BadRequestError("'optimizer' must be a string")
        if raw_params is not None and not isinstance(raw_params, dict):
            raise BadRequestError("'params' must be a JSON object")
        try:
            params = resolve_dse_params(optimizer, raw_params)
        except ValueError as exc:
            raise BadRequestError(str(exc)) from exc
        config = suite_config_from_spec(spec)
        key = _fingerprint("dse", {
            "config": config.as_dict(),
            "optimizer": {"name": optimizer, "params": params},
        })
        task, role = self.coalescer.lease(key)
        return task, role, {"config": config, "optimizer": optimizer,
                            "params": params,
                            "deadline_seconds": deadline_seconds}

    def run_dse(self, request: dict, publish) -> dict:
        """Leader path of one ``/dse`` request.

        Streams one ``round`` event per optimizer loop round through
        ``publish`` (run label, round index, points proposed, the
        optimizer's own note), then returns the final ``report`` event
        with the canonical ``repro-dse-report/1`` payload — byte-identical
        to what ``tybec suite dse`` writes for the same configuration.
        """
        config: SuiteConfig = request["config"]
        deadline = self._deadline_for(request)
        with self._slot():
            deadline.check("dse request queued too long")
            maybe_fail("service.handler")
            with self._lock:
                self.sweeps["started"] += 1

            def _round(label: str, round_, entries) -> None:
                event = {"event": "round", "run": label,
                         **round_.as_dict()}
                publish(event)

            dse = run_dse(config, request["optimizer"],
                          backend=self._backend, dense_backend=self._dense,
                          params=request["params"], on_round=_round,
                          deadline=deadline)
            with self._lock:
                self.sweeps["completed"] += 1
        return {
            "event": "report",
            "kind": "dse",
            "payload": dse.report.canonical_dict(),
            "evaluated": dse.evaluated,
        }


# ----------------------------------------------------------------------
# HTTP front end
# ----------------------------------------------------------------------


class _ServiceHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "tybec-service/1"

    #: HTTP status of the in-flight request (recorded by send_response)
    _status = 0
    #: trace id of the in-flight request (adopted from X-Tybec-Trace or
    #: minted by the active tracer); stamped on every streamed event
    _trace_id: str | None = None

    @property
    def service(self) -> ExplorationService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        # the stdlib default writes raw lines to stderr; route through the
        # structured logger instead so nothing is silently swallowed (the
        # per-request access event with timing is emitted by _handle)
        log_event(
            _ACCESS_LOG,
            "http",
            level=logging.DEBUG,
            client=self.address_string(),
            message=format % args,
            trace=self._trace_id or "-",
        )

    def send_response(self, code, message=None):
        self._status = code
        super().send_response(code, message)

    def _handle(self, method: str, route) -> None:
        """Run one routed request under a span, then emit the access log."""
        started = time.perf_counter()
        self._status = 0
        incoming = self.headers.get(TRACE_HEADER) or None
        with trace_span("service.request", incoming,
                        method=method, path=self.path) as sp:
            self._trace_id = sp.trace_id if sp is not None else incoming
            try:
                route()
            finally:
                elapsed = time.perf_counter() - started
                self.service.observe_request(
                    urlsplit(self.path).path, self._status, elapsed)
                log_event(
                    _ACCESS_LOG,
                    "request",
                    level=logging.INFO
                    if getattr(self.server, "verbose", False)
                    else logging.DEBUG,
                    method=method,
                    path=self.path,
                    status=self._status,
                    duration_ms=round(elapsed * 1e3, 3),
                    trace=self._trace_id or "-",
                )
                self._trace_id = None

    # -- plumbing ------------------------------------------------------
    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self._trace_id:
            self.send_header(TRACE_HEADER, self._trace_id)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, body: str, status: int = 200,
                   content_type: str = "text/plain; charset=utf-8") -> None:
        data = body.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        if self._trace_id:
            self.send_header(TRACE_HEADER, self._trace_id)
        self.end_headers()
        self.wfile.write(data)

    def _start_stream(self) -> None:
        self._broken = False
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        if self._trace_id:
            self.send_header(TRACE_HEADER, self._trace_id)
        self.end_headers()

    def _stream_event(self, event: dict) -> None:
        """Write one NDJSON line as an HTTP chunk.

        A client hanging up must not kill the computation — followers
        (and the results cache) still need it — so write failures just
        stop this connection's output.  When the request carries a trace
        id, every event is stamped with it under a top-level ``trace``
        key — a sibling of the canonical ``payload``, never inside it,
        so report bytes stay identical to an untraced run's.
        """
        if self._broken:
            return
        if self._trace_id:
            event = {**event, "trace": self._trace_id}
        data = canonical_json_line(event).encode()
        try:
            self.wfile.write(f"{len(data):X}\r\n".encode() + data + b"\r\n")
            self.wfile.flush()
        except OSError:
            self._broken = True

    def _end_stream(self) -> None:
        if self._broken:
            return
        try:
            self.wfile.write(b"0\r\n\r\n")
            self.wfile.flush()
        except OSError:
            self._broken = True

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw or b"null")
        except ValueError as exc:
            raise BadRequestError(f"request body is not valid JSON: {exc}") \
                from exc
        if not isinstance(payload, dict):
            raise BadRequestError("request body must be a JSON object")
        return payload

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        with self.server.track_request():  # type: ignore[attr-defined]
            self._handle("GET", self._do_get)

    def _do_get(self) -> None:
        parts = urlsplit(self.path)
        if parts.path == "/healthz":
            self._send_json({"ok": True, "service": "tybec-exploration"})
        elif parts.path == "/metrics":
            self.service.count_request("metrics")
            fmt = (parse_qs(parts.query).get("format") or ["json"])[0]
            if fmt == "prometheus":
                self._send_text(
                    self.service.prometheus_metrics(),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
            elif fmt == "json":
                self._send_json(self.service.metrics())
            else:
                self.service.count_request("errors")
                self._send_json(
                    {"error": f"unknown metrics format {fmt!r}; "
                     "use 'json' or 'prometheus'"}, 400)
        else:
            self.service.count_request("errors")
            self._send_json({"error": f"no such endpoint {parts.path!r}"},
                            404)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        with self.server.track_request():  # type: ignore[attr-defined]
            self._handle("POST", self._do_post)

    def _do_post(self) -> None:
        try:
            spec = self._read_body()
            if self.path == "/suite":
                self.service.count_request("suite")
                task, role, request = self.service.lease_suite(spec)
            elif self.path == "/dse":
                self.service.count_request("dse")
                task, role, request = self.service.lease_dse(spec)
            elif self.path == "/cost":
                self.service.count_request("cost")
                task, role, request = self.service.lease_cost(spec)
            else:
                self.service.count_request("errors")
                self._send_json({"error": f"no such endpoint {self.path!r}"},
                                404)
                return
        except BadRequestError as exc:
            self.service.count_request("errors")
            self._send_json({"error": str(exc)}, 400)
            return
        self._start_stream()
        self._stream_event({"event": "meta", "fingerprint": task.key,
                            "role": role})
        if self.path == "/suite":
            runner = self.service.run_suite
        elif self.path == "/dse":
            runner = self.service.run_dse
        else:
            runner = lambda req, publish: self.service.run_cost(req)  # noqa: E731
        self._drive(task, role, request, runner)
        self._end_stream()

    def _drive(self, task: CoalescedTask, role: str, request: dict,
               runner) -> None:
        """Drive one leased task to completion on this connection.

        One loop covers every role and every role *transition*: a leader
        that fails transiently is demoted to a waiter (its leadership up
        for grabs, so followers are never stranded by a dead leader), a
        waiter that sees the leadership lost claims it and recomputes.
        ``task.publish`` deduplicates the deterministic prefix a promoted
        leader regenerates, so ``cursor`` — events already sent to *this*
        client — stays aligned with the task's event log throughout.
        """
        service = self.service
        cursor = 0
        while True:
            if role == "leader":
                def _publish(event: dict) -> None:
                    nonlocal cursor
                    if task.publish(event):
                        self._stream_event(event)
                        cursor += 1

                try:
                    result = runner(request, _publish)
                except Exception as exc:  # noqa: BLE001 - reported to clients
                    if service.coalescer.abandon(task, exc,
                                                 promote=is_transient(exc)):
                        role = "waiter"   # demoted; may re-claim below
                        continue
                    service.count_request("errors")
                    self._stream_event({"event": "error", "message": str(exc)})
                    return
                service.coalescer.complete(task, result)
                self._stream_event(result)
                return
            # follower (or demoted ex-leader): stream the task's events
            batch, state = task.next_events(cursor)
            cursor += len(batch)
            for event in batch:
                self._stream_event(event)
            if state == "done":
                self._stream_event(task.result)
                return
            if state == "failed":
                service.count_request("errors")
                self._stream_event({"event": "error",
                                    "message": task.error_message
                                    or "service error"})
                return
            if state == "leader_lost" and task.claim_leadership():
                COUNTERS.bump("service.leaders_promoted")
                # pause before recomputing so a sweep that keeps dying
                # burns wall-clock, not its whole claim budget, at once
                time.sleep(service.leader_retry_policy.delay(
                    task.claims - 1, key=task.key))
                role = "leader"


class ServiceServer(ThreadingHTTPServer):
    """The threaded HTTP server wrapping one :class:`ExplorationService`."""

    daemon_threads = True
    # socketserver's default listen backlog of 5 drops SYNs under a
    # concurrent-client burst; the kernel's 1 s retransmit then shows up
    # as a latency cliff on otherwise-millisecond requests
    request_queue_size = 128

    def __init__(self, address: tuple[str, int],
                 service: ExplorationService | None = None,
                 verbose: bool = False):
        super().__init__(address, _ServiceHandler)
        self.service = service or ExplorationService()
        self.verbose = verbose
        self._inflight = 0
        self._idle = threading.Condition()

    @property
    def port(self) -> int:
        return self.server_address[1]

    # -- graceful shutdown ---------------------------------------------
    @contextmanager
    def track_request(self):
        """Count one in-flight request for the drain barrier."""
        with self._idle:
            self._inflight += 1
        try:
            yield
        finally:
            with self._idle:
                self._inflight -= 1
                if self._inflight == 0:
                    self._idle.notify_all()

    def inflight_requests(self) -> int:
        with self._idle:
            return self._inflight

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every in-flight request finishes (or ``timeout``).

        Returns whether the server actually drained.  Call after
        :meth:`shutdown` — draining does not stop new connections by
        itself.
        """
        deadline = Deadline(timeout) if timeout else Deadline.none()
        with self._idle:
            while self._inflight > 0:
                remaining = deadline.remaining()
                if remaining <= 0:
                    return False
                self._idle.wait(None if remaining == float("inf")
                                else remaining)
            return True

    def shutdown_gracefully(self, timeout: float | None = 30.0) -> bool:
        """Stop accepting, drain in-flight requests, close the socket.

        The contract a SIGTERM'd ``tybec serve`` honours: streams already
        being served run to completion (drained, not dropped); only then
        does the process exit.  Returns whether the drain completed
        within ``timeout``.
        """
        self.shutdown()                 # stop the accept loop
        drained = self.drain(timeout)
        self.server_close()
        return drained


def serve(host: str = "127.0.0.1", port: int = DEFAULT_PORT,
          max_concurrency: int = 4, verbose: bool = False,
          request_deadline: float | None = None) -> ServiceServer:
    """Bind the service (``port=0`` for an ephemeral port); caller runs
    ``serve_forever()`` (or drives it from a background thread)."""
    service = ExplorationService(max_concurrency=max_concurrency,
                                 default_deadline_seconds=request_deadline)
    return ServiceServer((host, port), service, verbose=verbose)
