"""In-flight request coalescing keyed on content fingerprints.

The exploration service's contract is that *identical work runs once*:
when several clients ask for the same sweep — same kernels, same grid,
same device axes, byte-identical canonical configuration — exactly one
underlying computation executes and every client streams its results.
Two layers make that hold regardless of how the requests interleave:

:class:`CoalescedTask`
    One underlying computation.  The *leader* (the request that arrived
    first) publishes progress events as points complete and finishes the
    task with the final report payload; *followers* attach to the task
    and replay its event stream — events already published arrive
    immediately, later ones as the leader lands them (a
    ``threading.Condition`` broadcast per publish).

:class:`RequestCoalescer`
    The registry.  ``lease(key)`` hands back the in-flight task for
    ``key`` (role ``follower``), a completed task from the bounded
    results cache (role ``replay``), or a fresh task the caller must
    drive (role ``leader``).  The results cache is what makes the
    "exactly one sweep" guarantee *deterministic*: a second identical
    request arriving a microsecond after the first completed still joins
    the original computation instead of starting its own.

Failures are never cached — a leader that raises poisons only the
clients already attached; the next request for the same key becomes a
fresh leader and retries.

A *transient* leader failure need not poison anyone: ``abandon(...,
promote=True)`` marks the leadership lost instead of the task dead, and
a waiting follower claims it and recomputes.  The computation is
deterministic, so the promoted leader's republished events are
byte-identical to the originals — :meth:`CoalescedTask.publish` skips
the already-published prefix and every client's stream continues
seamlessly from wherever the dead leader stopped.
"""

from __future__ import annotations

import threading
from typing import Iterator

from repro.cost.cache import BoundedCache
from repro.resilience import COUNTERS

__all__ = ["CoalescedTask", "RequestCoalescer", "TaskFailedError"]


class TaskFailedError(RuntimeError):
    """Raised to followers when the leader's computation failed."""


class CoalescedTask:
    """One underlying computation, streamed to every attached client."""

    #: leadership claims (original leader included) before a task gives
    #: up and fails for real — the retry budget for "the leader died"
    MAX_LEADER_CLAIMS = 3

    def __init__(self, key: str):
        self.key = key
        self._cond = threading.Condition()
        self._events: list[dict] = []
        self._done = False
        self._error: str | None = None
        #: the leadership is up for grabs (the leader failed transiently)
        self._leader_lost = False
        #: republished-event prefix a promoted leader must skip
        self._skip = 0
        #: leadership claims consumed so far (the original lease is #1)
        self.claims = 1
        #: the final report event (set by :meth:`finish`)
        self.result: dict | None = None
        #: clients that attached instead of computing (leader excluded)
        self.followers = 0

    # ------------------------------------------------------------------
    # leader side
    # ------------------------------------------------------------------
    def publish(self, event: dict) -> bool:
        """Append one progress event and wake every streaming follower.

        Returns whether the event was actually appended: a promoted
        leader recomputes from scratch, and the deterministic prefix it
        regenerates — events the dead leader already published — is
        skipped, so no client ever sees a duplicate.
        """
        with self._cond:
            if self._skip > 0:
                self._skip -= 1
                return False
            self._events.append(event)
            self._cond.notify_all()
        return True

    def finish(self, result: dict) -> None:
        """Mark the computation complete with its final payload."""
        with self._cond:
            self.result = result
            self._done = True
            self._cond.notify_all()

    def fail(self, error: BaseException | str) -> None:
        """Mark the computation failed; followers raise on stream end."""
        with self._cond:
            self._error = str(error)
            self._done = True
            self._leader_lost = False
            self._cond.notify_all()

    def leader_failed(self, error: BaseException | str) -> bool:
        """The leader died transiently; offer the leadership to a waiter.

        Returns True when the leadership is up for promotion, False when
        the claim budget is spent — the task then fails for real and
        every attached client gets the error.
        """
        with self._cond:
            if self._done:
                return False
            if self.claims >= self.MAX_LEADER_CLAIMS:
                self._error = str(error)
                self._done = True
                self._leader_lost = False
                self._cond.notify_all()
                return False
            self._error = str(error)   # provisional; cleared on promotion
            self._leader_lost = True
            self._cond.notify_all()
            return True

    def claim_leadership(self) -> bool:
        """Atomically take over a lost leadership (first claimant wins).

        The winner must recompute and publish; the deterministic prefix
        the dead leader already landed is deduplicated by
        :meth:`publish`.
        """
        with self._cond:
            if self._done or not self._leader_lost:
                return False
            self._leader_lost = False
            self._error = None
            self.claims += 1
            self._skip = len(self._events)
            return True

    # ------------------------------------------------------------------
    # follower side
    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        with self._cond:
            return self._done

    @property
    def error_message(self) -> str | None:
        with self._cond:
            return self._error

    def next_events(self, cursor: int) -> tuple[list[dict], str]:
        """Block for progress past ``cursor``; return it plus the state.

        States: ``running`` (events follow, more may come), ``done``
        (stream complete, ``result`` is set), ``failed`` (stream
        complete, ``error_message`` is set) and ``leader_lost`` (the
        leader died transiently — the caller may :meth:`claim_leadership`
        and recompute, or loop to wait for whoever does).  Pending events
        always drain before ``leader_lost`` is reported, so a successful
        claimant's cursor equals the published-event count.
        """
        with self._cond:
            while (cursor >= len(self._events) and not self._done
                   and not self._leader_lost):
                self._cond.wait()
            batch = self._events[cursor:]
            if batch:
                return batch, "running"
            if self._done:
                return [], "failed" if self._error is not None else "done"
            return [], "leader_lost"

    def stream(self) -> Iterator[dict]:
        """Yield every progress event, blocking until the task finishes.

        Events published before the follower attached replay immediately;
        later ones arrive as the leader lands them.  Raises
        :class:`TaskFailedError` after the last event when the leader
        failed.
        """
        cursor = 0
        while True:
            with self._cond:
                while cursor >= len(self._events) and not self._done:
                    self._cond.wait()
                batch = self._events[cursor:]
                cursor = len(self._events)
                finished = self._done and cursor >= len(self._events)
                error = self._error
            yield from batch
            if finished:
                if error is not None:
                    raise TaskFailedError(error)
                return

    def wait(self) -> dict:
        """Block until the task completes; return the final payload."""
        with self._cond:
            while not self._done:
                self._cond.wait()
            if self._error is not None:
                raise TaskFailedError(self._error)
            assert self.result is not None
            return self.result


class RequestCoalescer:
    """Deduplicate identical requests onto one underlying computation."""

    def __init__(self, results_capacity: int = 64):
        self._lock = threading.Lock()
        self._inflight: dict[str, CoalescedTask] = {}
        self._results = BoundedCache(maxsize=results_capacity,
                                     name="service-results")
        #: cumulative followers attached to an in-flight task
        self.joined = 0
        #: cumulative requests served from the completed-results cache
        self.replayed = 0
        #: cumulative leaderships lost to a transient leader failure
        self.leaders_lost = 0

    def lease(self, key: str) -> tuple[CoalescedTask, str]:
        """The task for ``key`` plus this caller's role.

        ``leader``
            A fresh task: the caller must compute, publish and either
            :meth:`complete` or :meth:`abandon` it.
        ``follower``
            The computation is in flight; stream it.
        ``replay``
            The computation already completed; its task replays the full
            stream without blocking.
        """
        with self._lock:
            finished = self._results.get(key)
            if finished is not None:
                self.replayed += 1
                return finished, "replay"
            task = self._inflight.get(key)
            if task is not None:
                task.followers += 1
                self.joined += 1
                return task, "follower"
            task = CoalescedTask(key)
            self._inflight[key] = task
            return task, "leader"

    def complete(self, task: CoalescedTask, result: dict) -> None:
        """Publish the leader's final payload and cache the task."""
        task.finish(result)
        with self._lock:
            self._results.put(task.key, task)
            self._inflight.pop(task.key, None)

    def abandon(self, task: CoalescedTask, error: BaseException | str,
                promote: bool = False) -> bool:
        """Fail the task; the key becomes leasable again (no caching).

        With ``promote=True`` (a *transient* leader failure) the task is
        kept in flight and its leadership offered to a waiting client
        instead — followers are never stranded by a dead leader while
        the claim budget lasts.  Returns whether a promotion is pending.
        """
        if promote and task.leader_failed(error):
            with self._lock:
                self.leaders_lost += 1
            COUNTERS.bump("service.leaders_lost")
            return True
        task.fail(error)
        with self._lock:
            self._inflight.pop(task.key, None)
        return False

    # ------------------------------------------------------------------
    def in_flight(self) -> int:
        with self._lock:
            return len(self._inflight)

    def info(self) -> dict:
        """Counters for the ``/metrics`` endpoint."""
        with self._lock:
            return {
                "in_flight": len(self._inflight),
                "joined": self.joined,
                "replayed": self.replayed,
                "leaders_lost": self.leaders_lost,
                "results_cache": self._results.info(),
            }
