"""A stdlib client for the exploration service.

Built on :mod:`http.client` (no new dependencies): one connection per
request, chunked-transfer decoding handled by the stdlib, NDJSON events
surfaced either as an iterator (:meth:`ServiceClient.stream`) or folded
into a :class:`ServiceResponse` (:meth:`cost` / :meth:`suite`).

The response's ``payload`` is the canonical report dict; pushing it back
through :func:`repro.suite.report.canonical_json` reproduces the exact
bytes ``tybec suite run -o report.json`` would have written for the same
configuration — that round trip is what the coalescing acceptance test
pins.
"""

from __future__ import annotations

import http.client
import json
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.obs.trace import current_trace_id
from repro.resilience import RetryBudgetExceededError, RetryPolicy
from repro.service.server import DEFAULT_PORT, TRACE_HEADER

__all__ = ["ServiceClient", "ServiceError", "ServiceResponse"]

#: connect-level retry budget: refused/reset connections (a daemon
#: restarting, a listen backlog burst) are retried with backoff; anything
#: the server actually *answered* is not — replaying an answered request
#: is the coalescer's job, not the transport's
DEFAULT_CONNECT_POLICY = RetryPolicy(max_attempts=3, base_delay=0.1,
                                     max_delay=1.0)


class ServiceError(RuntimeError):
    """An HTTP error status or a streamed ``error`` event."""


@dataclass
class ServiceResponse:
    """One folded request/response exchange."""

    #: the final report payload (canonical dict)
    payload: dict
    #: content fingerprint the service coalesced this request on
    fingerprint: str = ""
    #: ``leader`` (we computed), ``follower`` (joined an in-flight
    #: computation) or ``replay`` (served from the results cache)
    role: str = ""
    #: streamed per-point ``entry`` events, in sweep order
    entries: list = field(default_factory=list)

    @property
    def coalesced(self) -> bool:
        return self.role in ("follower", "replay")


class ServiceClient:
    """Talk to a running exploration service."""

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 timeout: float = 300.0,
                 retry_policy: RetryPolicy | None = None):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry_policy = retry_policy or DEFAULT_CONNECT_POLICY

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, body: dict | None = None):
        payload = None if body is None else json.dumps(body)
        headers = {"Content-Type": "application/json"} if payload else {}
        trace_id = current_trace_id()
        if trace_id:
            # propagate the active trace so the server's request span (and
            # every streamed event it stamps) joins this client's trace
            headers[TRACE_HEADER] = trace_id

        def _attempt(attempt: int):
            conn = http.client.HTTPConnection(self.host, self.port,
                                              timeout=self.timeout)
            try:
                conn.request(method, path, body=payload, headers=headers)
                return conn, conn.getresponse()
            except ConnectionError:
                conn.close()
                raise

        try:
            return self.retry_policy.call(
                _attempt, key="client.connect", what=f"{method} {path}",
                classify=lambda exc: isinstance(exc, ConnectionError))
        except RetryBudgetExceededError as exc:
            # callers (and the CLI) handle ConnectionError; the exhausted
            # budget re-raises the underlying refusal, not the wrapper
            raise exc.last from exc

    def _json(self, method: str, path: str, body: dict | None = None) -> dict:
        conn, response = self._request(method, path, body)
        try:
            data = json.loads(response.read() or b"{}")
            if response.status >= 400:
                raise ServiceError(
                    data.get("error", f"HTTP {response.status} on {path}"))
            return data
        finally:
            conn.close()

    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._json("GET", "/healthz")

    def metrics(self) -> dict:
        return self._json("GET", "/metrics")

    def stream(self, path: str, body: dict) -> Iterator[dict]:
        """POST and yield each NDJSON event as the service emits it."""
        conn, response = self._request("POST", path, body)
        try:
            if response.status >= 400:
                data = json.loads(response.read() or b"{}")
                raise ServiceError(
                    data.get("error", f"HTTP {response.status} on {path}"))
            for raw in response:
                line = raw.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()

    def _fold(self, path: str, body: dict,
              on_entry: Callable[[dict], None] | None = None) -> ServiceResponse:
        folded = ServiceResponse(payload={})
        final = None
        for event in self.stream(path, body):
            kind = event.get("event")
            if kind == "meta":
                folded.fingerprint = event.get("fingerprint", "")
                folded.role = event.get("role", "")
            elif kind == "entry":
                folded.entries.append(event)
                if on_entry is not None:
                    on_entry(event)
            elif kind == "report":
                final = event
            elif kind == "error":
                raise ServiceError(event.get("message", "service error"))
        if final is None:
            raise ServiceError(f"stream from {path} ended without a report")
        folded.payload = final["payload"]
        return folded

    # ------------------------------------------------------------------
    def cost(self, design: str, *, device: str = "stratix-v",
             grid=(24, 24, 24), iterations: int = 1000,
             pattern: str = "contiguous", name: str = "design") -> ServiceResponse:
        """Cost one ``.tirl`` design variant."""
        return self._fold("/cost", {
            "design": design,
            "device": device,
            "grid": list(grid),
            "iterations": iterations,
            "pattern": pattern,
            "name": name,
        })

    def suite(self, spec: dict,
              on_entry: Callable[[dict], None] | None = None) -> ServiceResponse:
        """Run (or join) a suite sweep; entries stream as points complete."""
        return self._fold("/suite", spec, on_entry=on_entry)
