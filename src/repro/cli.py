"""``tybec`` — the command-line front end of the reproduction.

Sub-commands mirror the flows of the paper:

``tybec cost DESIGN.tirl``
    Parse a TyTra-IR design variant, cost it for a workload and print the
    report (Figure 2's use-case).

``tybec emit DESIGN.tirl -o DIR``
    Generate the HDL kernel, compute unit, configuration include and the
    HLS-framework integration glue.

``tybec explore --kernel sor --max-lanes 16``
    Generate lane variants by type transformation, cost each one and print
    the Figure-15 style sweep table.  With ``--clocks``, ``--forms`` or
    ``--patterns`` the sweep becomes a multi-axis design-space exploration;
    ``--jobs N`` fans the estimations out over N worker processes and
    ``--pareto`` prints the throughput/utilisation Pareto frontier.

``tybec calibrate --device stratix-v``
    Run the one-time per-device characterisation and print (or save) the
    fitted cost database.

``tybec stream-bench``
    Run the Figure-10 sustained-bandwidth benchmark on the memory
    simulator.

``tybec flow run|sim|report``
    The RTL flow orchestration: ``run`` takes a ``.tirl`` design, emits
    its HDL into a managed run directory, elaborates it with the
    pure-Python RTL backend (or iverilog via ``--backend``), simulates
    the seeded testbench stimulus and verifies every output word and
    reduction against the kernel Python reference; ``sim`` does the same
    for a registered kernel (``--kernel/--lanes/--grid``); ``report``
    pretty-prints a stored ``result.json``.

``tybec suite run|validate|flow|diff|record-golden``
    The workload suite: cost every registered kernel across a
    kernel x device x form x lane grid and emit a canonical JSON report
    (``run``), cross-validate every costed point against the
    cycle-accurate substrate simulators and exit non-zero on disagreement
    (``validate``, with ``--tolerance`` / ``--no-cycle-accurate``),
    RTL-verify every unique design family of the grid and exit non-zero
    on any functional or cycle disagreement (``flow``), compare two
    reports field by field (``diff``, non-zero exit on any difference),
    or regenerate the checked-in golden reports after an intentional
    model change (``record-golden``; ``--validation`` for the
    cross-validation goldens, ``--flows`` for the RTL flow goldens).

``tybec cache stats|clear|warm``
    The persistent warm-start store (``TYBEC_CACHE_DIR``, default
    ``~/.cache/tybec``): report its contents, clear it, or pre-populate
    device calibrations and kernel design-family analyses so the next
    ``cost``/``explore``/``suite run`` starts warm.

``tybec serve``
    Run the persistent exploration service: one warm set of caches
    shared by every client, identical in-flight requests coalesced onto
    one underlying sweep, results streamed back as canonical NDJSON.

``tybec client cost|suite|metrics|health``
    Talk to a running service: cost one ``.tirl`` design, run (or join)
    a suite sweep, or inspect the daemon's cache/queue metrics.

``tybec trace summarize``
    Aggregate a ``repro-trace/1`` NDJSON file (``--trace`` /
    ``TYBEC_TRACE``) into per-site totals, the slowest spans and the
    critical path.

``tybec bench report``
    Merge every ``benchmarks/results/BENCH_*.json`` artifact into one
    trend table: per benchmark, the headline metrics, their gates and
    whether the stored measurement passes.

Global flags (before the sub-command): ``--trace PATH`` writes a
structured span trace of the whole invocation; ``--log-level LEVEL``
turns on run-id-correlated logging to stderr.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.compiler import CompilationOptions, TybecCompiler
from repro.cost import SustainedBandwidthModel, calibrate_device
from repro.explore import (
    OPTIMIZERS,
    DenseBackend,
    DenseUnsupportedError,
    DesignSpace,
    ExhaustiveOptimizer,
    ExplorationEngine,
    FmaxBinarySearchOptimizer,
    ProcessPoolBackend,
    SerialBackend,
    SuccessiveHalvingOptimizer,
    SurrogatePrunedOptimizer,
    SweepResult,
    clock_range,
    exhaustive_search,
    generate_lane_variants,
)
from repro.kernels import ALL_KERNELS, get_kernel
from repro.models import KernelInstance, NDRange, PatternKind
from repro.substrate import MemorySystemSimulator, SyntheticSynthesizer, get_device

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tybec",
        description="TyTra back-end compiler and cost model (paper reproduction)",
    )
    parser.add_argument("--trace", type=Path, default=None, metavar="PATH",
                        help="write a structured repro-trace/1 NDJSON span "
                             "trace of this invocation to PATH (equivalent "
                             "to TYBEC_TRACE=PATH)")
    parser.add_argument("--log-level", default=None, metavar="LEVEL",
                        choices=["debug", "info", "warning", "error",
                                 "critical"],
                        help="enable run-id-correlated logging to stderr at "
                             "LEVEL")
    sub = parser.add_subparsers(dest="command", required=True)

    cost = sub.add_parser("cost", help="cost a TyTra-IR design variant")
    cost.add_argument("design", type=Path, help="path to the .tirl file")
    cost.add_argument("--device", default="stratix-v")
    cost.add_argument("--grid", type=int, nargs="+", default=[24, 24, 24],
                      help="NDRange dimensions of the workload")
    cost.add_argument("--iterations", type=int, default=1000,
                      help="kernel-instance repetitions (NKI)")
    cost.add_argument("--json", action="store_true", help="emit the report as JSON")

    emit = sub.add_parser("emit", help="generate HDL and integration glue")
    emit.add_argument("design", type=Path)
    emit.add_argument("-o", "--output", type=Path, default=Path("generated"))
    emit.add_argument("--device", default="stratix-v")
    emit.add_argument("--no-wrapper", action="store_true")

    explore = sub.add_parser("explore", help="explore design variants of a kernel")
    explore.add_argument("--kernel", choices=sorted(ALL_KERNELS), default="sor")
    explore.add_argument("--device", default="stratix-v")
    explore.add_argument("--grid", type=int, nargs="+", default=None)
    explore.add_argument("--iterations", type=int, default=1000)
    explore.add_argument("--max-lanes", type=int, default=16)
    explore.add_argument("--lanes", type=int, nargs="+", default=None,
                         help="explicit lane counts (overrides --max-lanes)")
    explore.add_argument("--clocks", type=float, nargs="+", default=None, metavar="MHZ",
                         help="clock-frequency axis (device fmax when omitted)")
    explore.add_argument("--forms", nargs="+", default=None,
                         choices=["auto", "A", "B", "C"],
                         help="memory-execution form axis")
    explore.add_argument("--patterns", nargs="+", default=None,
                         choices=[p.value for p in PatternKind],
                         help="access-pattern axis")
    explore.add_argument("--jobs", "-j", type=int, default=None, metavar="N",
                         help="cost variants on N worker processes")
    explore.add_argument("--dense", action="store_true",
                         help="evaluate the whole space as broadcast numpy "
                              "arrays (single-process; reports materialized "
                              "only for the points shown)")
    explore.add_argument("--clock-range", default=None, metavar="LO:HI:N",
                         help="continuous clock axis: N evenly spaced "
                              "frequencies between LO and HI MHz "
                              "(e.g. 150:300:64; implies --dense-friendly "
                              "multi-axis exploration)")
    explore.add_argument("--emit-all", action="store_true",
                         help="materialize and print every costed point "
                              "(default with --dense: the top --top rows)")
    explore.add_argument("--top", type=int, default=12, metavar="K",
                         help="rows to show for dense sweeps (default: 12)")
    explore.add_argument("--pareto", action="store_true",
                         help="report the throughput/utilisation Pareto frontier")
    explore.add_argument("--optimizer", choices=list(OPTIMIZERS), default=None,
                         help="drive the sweep through an incremental "
                              "optimizer loop: exhaustive (every point), "
                              "fmax (binary-search the highest feasible "
                              "clock per design family; --forms defaults to "
                              "A B here, since form C designs are always "
                              "feasible), halving (successive-halving race "
                              "between forms under --budget), surrogate "
                              "(dense numpy prune, then exact costing of "
                              "the top --keep fraction)")
    explore.add_argument("--resolution", type=float, default=None, metavar="MHZ",
                         help="fmax bracket resolution in MHz "
                              "(--optimizer fmax; default: 1.0)")
    explore.add_argument("--budget", type=int, default=None, metavar="N",
                         help="total cost-evaluation budget "
                              "(--optimizer halving; default: 64)")
    explore.add_argument("--keep", type=float, default=None, metavar="FRAC",
                         help="fraction of points kept by the dense prune "
                              "(--optimizer surrogate; default: 0.1)")
    explore.add_argument("--json", action="store_true")

    calibrate = sub.add_parser("calibrate", help="run the one-time device characterisation")
    calibrate.add_argument("--device", default="stratix-v")
    calibrate.add_argument("-o", "--output", type=Path, default=None,
                           help="write the fitted cost database to a JSON file")

    stream = sub.add_parser("stream-bench", help="run the sustained-bandwidth benchmark")
    stream.add_argument("--device", default="virtex-7")
    stream.add_argument("--sides", type=int, nargs="+",
                        default=list(MemorySystemSimulator.DEFAULT_SIDES))

    flow = sub.add_parser(
        "flow",
        help="run RTL flows over the generated HDL",
        description="Elaborate, simulate and verify the generated Verilog "
                    "against the kernel Python reference — the pure-Python "
                    "RTL backend needs nothing installed; external backends "
                    "(iverilog) are discovered on PATH.",
    )
    flow_sub = flow.add_subparsers(dest="flow_command", required=True)

    def _add_flow_sim_args(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--items", type=int, default=256,
                            help="work items to stream (default: 256)")
        parser.add_argument("--seed", type=lambda s: int(s, 0), default=None,
                            help="stimulus seed (default: the testbench default)")
        parser.add_argument("--backend", choices=["pyrtl", "iverilog"],
                            default="pyrtl",
                            help="simulation backend (default: pure Python)")
        parser.add_argument("--no-cache", dest="use_cache", action="store_false",
                            default=True,
                            help="bypass the persistent flow-result cache")
        parser.add_argument("-o", "--output", type=Path, default=None,
                            metavar="DIR",
                            help="run-directory root (artifacts, manifest and "
                                 "result.json are written beneath it)")
        parser.add_argument("--json", action="store_true",
                            help="print the result payload as JSON")

    flow_run = flow_sub.add_parser(
        "run", help="verify a .tirl design's generated RTL end to end")
    flow_run.add_argument("design", type=Path, help="path to the .tirl file")
    flow_run.add_argument("--function", default=None,
                          help="leaf function to simulate (default: largest leaf)")
    _add_flow_sim_args(flow_run)

    flow_sim = flow_sub.add_parser(
        "sim", help="verify a registered kernel's generated RTL")
    flow_sim.add_argument("--kernel", choices=sorted(ALL_KERNELS), default="sor")
    flow_sim.add_argument("--lanes", type=int, default=1)
    flow_sim.add_argument("--grid", type=int, nargs="+", default=None)
    _add_flow_sim_args(flow_sim)

    flow_report = flow_sub.add_parser(
        "report", help="pretty-print a stored flow result")
    flow_report.add_argument("path", type=Path,
                             help="a flow run directory or its result.json")
    flow_report.add_argument("--json", action="store_true")

    suite = sub.add_parser(
        "suite",
        help="run, diff or pin the multi-kernel workload suite",
        description="Batch-cost every registered kernel over a "
                    "kernel x device x form x lane grid, emit canonical JSON "
                    "reports, and diff them against goldens.",
    )
    suite_sub = suite.add_subparsers(dest="suite_command", required=True)

    def _add_suite_sweep_args(parser: argparse.ArgumentParser) -> None:
        """The sweep-grid arguments shared by ``suite run`` and ``suite
        validate`` (one grid definition, two consumers)."""
        parser.add_argument("--kernels", nargs="+", default=None,
                            metavar="KERNEL",
                            help="kernels to cost (default: every registered kernel)")
        parser.add_argument("--devices", nargs="+", default=["stratix-v"],
                            help="device axis of the sweep")
        parser.add_argument("--lanes", type=int, nargs="+", default=None,
                            help="explicit lane counts (default: divisors up to --max-lanes)")
        parser.add_argument("--max-lanes", type=int, default=4)
        parser.add_argument("--forms", nargs="+", default=["auto"],
                            choices=["auto", "A", "B", "C"],
                            help="memory-execution form axis")
        parser.add_argument("--patterns", nargs="+", default=["contiguous"],
                            choices=[p.value for p in PatternKind],
                            help="access-pattern axis")
        parser.add_argument("--clocks", type=float, nargs="+", default=None,
                            metavar="MHZ", help="clock axis (device fmax when omitted)")
        parser.add_argument("--iterations", type=int, default=None,
                            help="override every kernel's iteration count")
        parser.add_argument("--tiny", action="store_true",
                            help="smoke-test grids (each dimension capped at 8, "
                                 "10 iterations) — the golden configuration")
        parser.add_argument("--jobs", "-j", type=int, default=None, metavar="N",
                            help="cost the batch on N worker processes")
        parser.add_argument("--dense", action="store_true",
                            help="evaluate each kernel's grid as broadcast "
                                 "numpy arrays (single-process; reports are "
                                 "byte-identical to the per-point path)")
        parser.add_argument("-o", "--output", type=Path, default=None,
                            help="write the canonical JSON report to a file")
        parser.add_argument("--json", action="store_true",
                            help="print the canonical JSON report to stdout")

    suite_run = suite_sub.add_parser(
        "run", help="cost the suite and emit a canonical JSON report")
    _add_suite_sweep_args(suite_run)

    suite_validate = suite_sub.add_parser(
        "validate",
        help="cross-validate the analytic estimates against the "
             "cycle-accurate substrate simulators (exit 1 on disagreement)",
        description="Cost a suite grid, then drive every design point "
                    "through the pipeline simulator (analytic and "
                    "cycle-stepping mode) and the memory-system simulator, "
                    "and report per-point agreement as a canonical JSON "
                    "validation report.",
    )
    _add_suite_sweep_args(suite_validate)
    suite_validate.add_argument("--tolerance", type=float, default=None,
                                metavar="REL",
                                help="relative tolerance on the device-side "
                                     "seconds agreement (default: 0.05)")
    suite_validate.add_argument("--memory-tolerance", type=float, default=None,
                                metavar="REL",
                                help="relative tolerance on the memory-leg "
                                     "fit-vs-simulator agreement (default: 0.5)")
    suite_validate.add_argument("--cycle-accurate", dest="cycle_accurate",
                                action="store_true", default=True,
                                help="also run the cycle-stepping simulator "
                                     "(the default)")
    suite_validate.add_argument("--no-cycle-accurate", dest="cycle_accurate",
                                action="store_false",
                                help="skip the cycle-stepping pass "
                                     "(analytic simulation only)")

    suite_flow = suite_sub.add_parser(
        "flow",
        help="RTL-verify every unique design family of the grid "
             "(exit 1 on any disagreement)",
        description="Cost a suite grid through the exploration engine, "
                    "then elaborate and cycle-simulate the generated "
                    "Verilog of every (kernel, lanes, grid) family with "
                    "the pure-Python RTL backend, checking outputs and "
                    "reductions bit for bit against the kernel Python "
                    "reference and cycle counts against the pipeline "
                    "simulator.",
    )
    _add_suite_sweep_args(suite_flow)
    suite_flow.add_argument("--seed", type=lambda s: int(s, 0), default=None,
                            help="stimulus seed (default: testbench default)")
    suite_flow.add_argument("--max-items", type=int, default=None,
                            help="cap on work items streamed per family "
                                 "(default: 512)")

    suite_dse = suite_sub.add_parser(
        "dse",
        help="optimizer-driven design-space exploration over the suite grid "
             "(canonical repro-dse-report/1 with per-round provenance)",
        description="Instead of eagerly costing every grid point, drive an "
                    "incremental optimizer loop per kernel (or one "
                    "cross-kernel successive-halving race) and report what "
                    "each round proposed, what it cost, and what the "
                    "optimizer concluded.",
    )
    _add_suite_sweep_args(suite_dse)
    suite_dse.add_argument("--optimizer", choices=list(OPTIMIZERS),
                           default="fmax",
                           help="search strategy (default: fmax)")
    suite_dse.add_argument("--resolution", type=float, default=None,
                           metavar="MHZ",
                           help="fmax bracket resolution (--optimizer fmax)")
    suite_dse.add_argument("--budget", type=int, default=None, metavar="N",
                           help="cost-evaluation budget (--optimizer halving)")
    suite_dse.add_argument("--keep", type=float, default=None, metavar="FRAC",
                           help="dense-prune keep fraction "
                                "(--optimizer surrogate)")

    suite_diff = suite_sub.add_parser(
        "diff", help="compare two suite reports field by field "
                     "(exit 1 on any difference)")
    suite_diff.add_argument("left", type=Path, help="baseline report (e.g. a golden)")
    suite_diff.add_argument("right", type=Path, help="candidate report")
    suite_diff.add_argument("--rtol", type=float, default=0.0,
                            help="relative tolerance for float fields (default: exact)")
    suite_diff.add_argument("--limit", type=int, default=20,
                            help="max differences to print")

    suite_golden = suite_sub.add_parser(
        "record-golden",
        help="re-run the golden configuration and rewrite tests/golden/*.json "
             "(the git diff of those files documents an intentional model change)")
    suite_golden.add_argument("--dir", type=Path, default=None,
                              help="goldens directory (default: tests/golden, "
                                   "or tests/golden/validation with --validation)")
    suite_golden.add_argument("--kernels", nargs="+", default=None, metavar="KERNEL")
    suite_golden.add_argument("--validation", action="store_true",
                              help="record the cross-validation goldens instead "
                                   "of the suite-report goldens")
    suite_golden.add_argument("--flows", action="store_true",
                              help="record the RTL flow goldens instead of the "
                                   "suite-report goldens")

    cache = sub.add_parser(
        "cache",
        help="inspect, clear or warm the persistent estimation cache",
        description="The persistent warm-start store holds per-device "
                    "calibration artifacts and per-family structural "
                    "analyses, keyed on content and schema version, under "
                    "TYBEC_CACHE_DIR (default ~/.cache/tybec).",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_sub.add_parser("stats", help="report cache location, entries and sizes")
    cache_sub.add_parser("clear", help="delete every cached artifact")
    cache_warm = cache_sub.add_parser(
        "warm",
        help="pre-populate device calibrations and kernel family analyses")
    cache_warm.add_argument("--devices", nargs="+", default=["stratix-v"],
                            help="devices to calibrate")
    cache_warm.add_argument("--kernels", nargs="+", default=None, metavar="KERNEL",
                            help="kernels whose design families to analyse "
                                 "(default: every registered kernel)")

    serve_p = sub.add_parser(
        "serve",
        help="run the persistent exploration service",
        description="One long-lived process owns one warm set of "
                    "estimation caches; clients POST .tirl designs or "
                    "suite grid specs, identical in-flight requests "
                    "coalesce onto one underlying sweep, and results "
                    "stream back as canonical NDJSON.",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8731,
                         help="listen port (0 for an ephemeral port)")
    serve_p.add_argument("--max-concurrency", type=int, default=4, metavar="N",
                         help="concurrent sweeps before requests queue "
                              "(default: 4)")
    serve_p.add_argument("--verbose", action="store_true",
                         help="log every HTTP request")
    serve_p.add_argument("--request-deadline", type=float, default=None,
                         metavar="SECONDS",
                         help="default per-request compute budget (bodies "
                              "may name their own 'deadline_seconds'; "
                              "default: unlimited)")
    serve_p.add_argument("--drain-timeout", type=float, default=30.0,
                         metavar="SECONDS",
                         help="on SIGTERM/Ctrl-C, wait this long for "
                              "in-flight requests to finish before "
                              "exiting (default: 30)")

    client_p = sub.add_parser(
        "client", help="talk to a running exploration service")
    client_p.add_argument("--host", default="127.0.0.1")
    client_p.add_argument("--port", type=int, default=8731)
    client_sub = client_p.add_subparsers(dest="client_command", required=True)

    client_cost = client_sub.add_parser(
        "cost", help="cost a .tirl design through the service")
    client_cost.add_argument("design", type=Path, help="path to the .tirl file")
    client_cost.add_argument("--device", default="stratix-v")
    client_cost.add_argument("--grid", type=int, nargs="+", default=[24, 24, 24])
    client_cost.add_argument("--iterations", type=int, default=1000)
    client_cost.add_argument("--pattern", default="contiguous",
                             choices=[p.value for p in PatternKind])
    client_cost.add_argument("--json", action="store_true",
                             help="print the full canonical report")

    client_suite = client_sub.add_parser(
        "suite", help="run (or join) a suite sweep through the service")
    _add_suite_sweep_args(client_suite)

    client_sub.add_parser("metrics", help="print the daemon's /metrics payload")
    client_sub.add_parser("health", help="probe the daemon's /healthz endpoint")

    trace_p = sub.add_parser(
        "trace",
        help="analyse structured span traces",
        description="Work with repro-trace/1 NDJSON files produced by "
                    "--trace / TYBEC_TRACE.",
    )
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)
    trace_sum = trace_sub.add_parser(
        "summarize",
        help="aggregate a trace: per-site totals, slowest spans, "
             "critical path")
    trace_sum.add_argument("path", type=Path,
                           help="path to the repro-trace/1 NDJSON file")
    trace_sum.add_argument("--top", type=int, default=10, metavar="K",
                           help="slowest spans to show (default: 10)")
    trace_sum.add_argument("--json", action="store_true",
                           help="print the summary as JSON")

    bench_p = sub.add_parser(
        "bench",
        help="report on stored benchmark artifacts",
        description="The benchmark suite writes its measurements to "
                    "benchmarks/results/BENCH_*.json; this merges them "
                    "into one trend table.",
    )
    bench_sub = bench_p.add_subparsers(dest="bench_command", required=True)
    bench_report = bench_sub.add_parser(
        "report",
        help="merge every BENCH_*.json into one trend table "
             "(metric, gate, measured value)")
    bench_report.add_argument("--dir", type=Path, default=None, metavar="DIR",
                              help="results directory "
                                   "(default: benchmarks/results)")
    bench_report.add_argument("--json", action="store_true",
                              help="print the rows as JSON")
    bench_report.add_argument("--strict", action="store_true",
                              help="exit non-zero when any gate fails")

    return parser


def _workload_from_args(args, name: str) -> KernelInstance:
    return KernelInstance(
        kernel=name,
        ndrange=NDRange(tuple(args.grid)),
        repetitions=args.iterations,
    )


def _cmd_cost(args) -> int:
    compiler = TybecCompiler(CompilationOptions(device=get_device(args.device)))
    text = args.design.read_text()
    module = compiler.parse(text, name=args.design.stem)
    report = compiler.cost(module, _workload_from_args(args, module.name))
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.to_text())
    return 0


def _cmd_emit(args) -> int:
    compiler = TybecCompiler(CompilationOptions(device=get_device(args.device)))
    module = compiler.parse(args.design.read_text(), name=args.design.stem)
    files = compiler.emit_hdl(module, include_wrapper=not args.no_wrapper)
    args.output.mkdir(parents=True, exist_ok=True)
    for name, body in files.items():
        (args.output / name).write_text(body)
        print(f"wrote {args.output / name}")
    return 0


def _explore_backend(args, optimizer: str | None = None):
    """The evaluation backend the CLI flags imply (None = caller default).

    ``--dense --jobs N`` composes only under the surrogate optimizer,
    where the two backends run different stages: the dense broadcast pass
    prunes the space and the process pool costs the survivors.  Every
    other path evaluates each point exactly once, so the flags name two
    mutually exclusive ways of doing the same work.
    """
    if getattr(args, "dense", False):
        if args.jobs and args.jobs > 1:
            if optimizer == "surrogate":
                return ProcessPoolBackend(max_workers=args.jobs)
            raise ValueError(
                "--dense is single-process by design (one broadcast pass, no "
                "per-point fan-out); it cannot be combined with --jobs. "
                "To prune densely and cost the survivors on worker "
                "processes, use --optimizer surrogate"
            )
        return DenseBackend()
    if args.jobs and args.jobs > 1:
        return ProcessPoolBackend(max_workers=args.jobs)
    return None


def _render_dense_sweep(args, space, sweep) -> int:
    """Render a dense sweep: top-k rows, best point, optional frontier.

    Only the shown points are materialized into reports — the whole point
    of the dense path; ``--emit-all`` takes the ordinary full-sweep
    rendering instead.
    """
    best = sweep.best()
    frontier = sweep.pareto_frontier() if args.pareto else []
    top = sweep.top(args.top)
    rows = SweepResult(entries=top).summary_rows()

    if args.json:
        print(json.dumps({
            "axes": space.axis_sizes(),
            "rows": rows,
            "best": best.point.as_dict() if best else None,
            "pareto": [entry.point.as_dict() for entry in frontier],
            "evaluated": sweep.evaluated,
            "feasible": sweep.feasible_count,
            "wall_seconds": sweep.wall_seconds,
            "points_per_second": sweep.points_per_second,
            "dense": True,
        }, indent=2))
        return 0

    axes = ", ".join(f"{n}={s}" for n, s in space.axis_sizes().items() if s > 1) or "lanes=1"
    print(f"exploring {space.kernel.name} on {args.device}, grid {tuple(space.grid)}, "
          f"{space.iterations} iterations ({len(space)} points, dense; axes: {axes})")
    header = (f"{'lanes':>5} {'MHz':>8} {'form':>4} {'pattern':>10} {'EWGT/s':>12} "
              f"{'ALUT%':>7} {'limiting':>16} {'ok':>3}")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['lanes']:>5} {row['clock_mhz']:>8.2f} {row['form']:>4} "
              f"{row['pattern']:>10} {row['ewgt_per_s']:>12.2f} {row['alut_pct']:>7.2f} "
              f"{row['limiting_factor']:>16} {'y' if row['feasible'] else 'n':>3}")
    if sweep.evaluated > len(top):
        print(f"(showing the top {len(top)} of {sweep.evaluated} points by EKIT; "
              f"--emit-all materializes every row)")
    if best is not None:
        print(f"best feasible point: {best.point.label}")
    if args.pareto:
        print("Pareto frontier (EKIT vs limiting-resource utilisation):")
        for entry in frontier:
            print(f"  {entry.point.label}: EKIT {entry.report.ekit:.3f}/s, "
                  f"worst utilisation "
                  f"{entry.report.feasibility.limiting_resource_utilization*100:.1f}%")
    print(f"costed {sweep.evaluated} points ({sweep.feasible_count} feasible) "
          f"in {sweep.wall_seconds:.3f} s ({sweep.points_per_second:,.0f} points/s)")
    return 0


def _cmd_explore_space(args, kernel, grid) -> int:
    """Multi-axis exploration through the engine (clock/form/pattern axes)."""
    clocks = tuple(args.clocks) if args.clocks else (None,)
    if args.clock_range:
        if args.clocks:
            print("--clock-range cannot be combined with --clocks",
                  file=sys.stderr)
            return 2
        try:
            clocks = clock_range(args.clock_range)
        except ValueError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
    try:
        backend = _explore_backend(args)
    except ValueError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    space = DesignSpace(
        kernel=kernel,
        grid=grid,
        iterations=args.iterations,
        lanes=args.lanes,
        max_lanes=args.max_lanes,
        clocks_mhz=clocks,
        forms=tuple(args.forms) if args.forms else ("auto",),
        devices=(get_device(args.device),),
        patterns=tuple(PatternKind(p) for p in args.patterns) if args.patterns else (
            PatternKind.CONTIGUOUS,),
    )
    if len(space) == 0:
        print(f"no valid lane counts for grid {grid} "
              f"(lanes must divide the NDRange size)", file=sys.stderr)
        return 2
    engine = ExplorationEngine(backend)
    if args.dense and not args.emit_all:
        try:
            return _render_dense_sweep(args, space, engine.explore_dense(space))
        except DenseUnsupportedError as exc:
            print(f"dense path unavailable ({exc}); using the per-point path",
                  file=sys.stderr)
    sweep = engine.explore(space)
    frontier = sweep.pareto_frontier() if args.pareto else []
    best = sweep.best()

    if args.json:
        print(json.dumps({
            "axes": space.axis_sizes(),
            "rows": sweep.summary_rows(),
            "best": best.point.as_dict() if best else None,
            "pareto": [entry.point.as_dict() for entry in frontier],
            "evaluated": sweep.evaluated,
            "wall_seconds": sweep.wall_seconds,
            "variants_per_second": sweep.variants_per_second,
        }, indent=2))
        return 0

    axes = ", ".join(f"{n}={s}" for n, s in space.axis_sizes().items() if s > 1) or "lanes=1"
    print(f"exploring {space.kernel.name} on {args.device}, grid {tuple(space.grid)}, "
          f"{space.iterations} iterations ({len(space)} points; axes: {axes})")
    header = (f"{'lanes':>5} {'MHz':>6} {'form':>4} {'pattern':>10} {'EWGT/s':>12} "
              f"{'ALUT%':>7} {'limiting':>16} {'ok':>3}")
    print(header)
    print("-" * len(header))
    for row in sweep.summary_rows():
        print(f"{row['lanes']:>5} {row['clock_mhz']:>6.0f} {row['form']:>4} "
              f"{row['pattern']:>10} {row['ewgt_per_s']:>12.2f} {row['alut_pct']:>7.2f} "
              f"{row['limiting_factor']:>16} {'y' if row['feasible'] else 'n':>3}")
    if best is not None:
        print(f"best feasible point: {best.point.label}")
    if args.pareto:
        print("Pareto frontier (EKIT vs limiting-resource utilisation):")
        for entry in frontier:
            print(f"  {entry.point.label}: EKIT {entry.report.ekit:.3f}/s, "
                  f"worst utilisation "
                  f"{entry.report.feasibility.limiting_resource_utilization*100:.1f}%")
    print(f"estimated {sweep.evaluated} variants in {sweep.wall_seconds:.3f} s "
          f"({sweep.variants_per_second:.1f} variants/s)")
    return 0


def _describe_best(best: dict | None) -> str | None:
    """One-line rendering of an optimizer's best-point payload."""
    if not best:
        return None
    return (f"best feasible point: {best['kernel']} x{best['lanes']} "
            f"@{best['clock_mhz']:g}MHz form={best['form']} "
            f"{best['pattern']} — EKIT {best['ekit_per_s']:.4f}/s")


def _cmd_explore_optimizer(args, kernel, grid) -> int:
    """Incremental optimizer-driven exploration (``--optimizer ...``)."""
    clocks = tuple(args.clocks) if args.clocks else (None,)
    if args.clock_range:
        if args.clocks:
            print("--clock-range cannot be combined with --clocks",
                  file=sys.stderr)
            return 2
        try:
            clocks = clock_range(args.clock_range)
        except ValueError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
    try:
        backend = _explore_backend(args, optimizer=args.optimizer)
    except ValueError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    forms = tuple(args.forms) if args.forms else None
    if forms is None:
        # form C (and "auto", which picks C on small footprints) needs no
        # external bandwidth, so every clock is feasible and an fmax
        # search just walks to the cap — bracket the bandwidth-bound
        # forms by default instead
        forms = ("A", "B") if args.optimizer == "fmax" else ("auto",)
    space = DesignSpace(
        kernel=kernel,
        grid=grid,
        iterations=args.iterations,
        lanes=args.lanes,
        max_lanes=args.max_lanes,
        clocks_mhz=clocks,
        forms=forms,
        devices=(get_device(args.device),),
        patterns=tuple(PatternKind(p) for p in args.patterns) if args.patterns
        else (PatternKind.CONTIGUOUS,),
    )
    if len(space) == 0:
        print(f"no valid lane counts for grid {grid} "
              f"(lanes must divide the NDRange size)", file=sys.stderr)
        return 2
    if args.optimizer == "exhaustive":
        optimizer = ExhaustiveOptimizer([space])
    elif args.optimizer == "fmax":
        optimizer = FmaxBinarySearchOptimizer(
            [space], resolution=args.resolution if args.resolution else 1.0)
    elif args.optimizer == "halving":
        arms = [(f"{kernel.name}:{form}", space.subspace(forms=(form,)))
                for form in forms]
        optimizer = SuccessiveHalvingOptimizer(
            arms, budget=args.budget if args.budget else 64)
    else:
        optimizer = SurrogatePrunedOptimizer(
            space, keep_fraction=args.keep if args.keep else 0.1,
            dense_backend=DenseBackend())
    run = ExplorationEngine(backend).run_optimizer(optimizer)
    result = run.result

    if args.json:
        print(json.dumps({
            "result": result,
            "rounds": run.rounds_payload(),
            "evaluated": run.evaluated,
            "wall_seconds": run.wall_seconds,
        }, indent=2))
        return 0

    print(f"exploring {kernel.name} on {args.device}, grid {tuple(grid)} "
          f"with the {args.optimizer} optimizer "
          f"({len(run.rounds)} round(s), {run.evaluated} point(s) costed, "
          f"{run.wall_seconds:.3f} s)")
    if args.optimizer == "fmax":
        header = (f"{'lanes':>5} {'form':>4} {'pattern':>10} {'fmax MHz':>9} "
                  f"{'probes':>6}  note")
        print(header)
        print("-" * len(header))
        for fam in result["families"]:
            fmax = "-" if fam["fmax_mhz"] is None else f"{fam['fmax_mhz']:.2f}"
            print(f"{fam['lanes']:>5} {fam['form']:>4} {fam['pattern']:>10} "
                  f"{fmax:>9} {fam['probes']:>6}  {fam['note']}")
    elif args.optimizer == "halving":
        for arm in result["arms"]:
            ekit = arm["best_ekit_per_s"]
            best_s = "-" if ekit is None else f"{ekit:.4f}/s"
            if arm["arm"] == result["winner"]:
                status = "winner"
            elif arm["eliminated_rung"] is not None:
                status = f"eliminated at rung {arm['eliminated_rung']}"
            else:
                status = "survived"
            print(f"  {arm['arm']}: {arm['evaluated']} point(s), "
                  f"best EKIT {best_s} ({status})")
        print(f"budget spent: {result['spent']}/{result['budget']} "
              f"over {result['rungs']} rung(s)")
    elif args.optimizer == "surrogate":
        print(f"dense prune: {result['dense_points']} point(s) -> "
              f"{result['scalar_points']} survivor(s) costed exactly "
              f"({result['pruned']} pruned, keep {result['keep_fraction']:g})")
        if result["fallback"]:
            print("(dense path unavailable for this space; "
                  "every point was costed exactly)")
    line = _describe_best(result.get("best"))
    if line:
        print(line)
    elif args.optimizer != "fmax":
        print("no feasible point found")
    return 0


def _cmd_explore(args) -> int:
    kernel = get_kernel(args.kernel)
    grid = tuple(args.grid) if args.grid else kernel.default_grid
    if args.optimizer:
        return _cmd_explore_optimizer(args, kernel, grid)
    multi_axis = (any((args.clocks, args.forms, args.patterns, args.clock_range))
                  or args.pareto or args.dense)
    if multi_axis:
        return _cmd_explore_space(args, kernel, grid)

    compiler = TybecCompiler(CompilationOptions(device=get_device(args.device)))
    variants = generate_lane_variants(kernel, grid=grid, iterations=args.iterations,
                                      max_lanes=args.max_lanes, lane_counts=args.lanes)
    if not variants:
        print(f"no valid lane counts for grid {grid} "
              f"(lanes must divide the NDRange size)", file=sys.stderr)
        return 2
    result = exhaustive_search(compiler, variants, backend=_explore_backend(args))
    rows = result.summary_rows()
    if args.json:
        print(json.dumps({"rows": rows, "best_lanes": result.best_lanes}, indent=2))
        return 0
    header = f"{'lanes':>5} {'EWGT/s':>12} {'ALUT%':>7} {'BRAM%':>7} {'DSP%':>6} {'limiting':>16} {'ok':>3}"
    print(f"exploring {args.kernel} on {args.device}, grid {grid}, {args.iterations} iterations")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['lanes']:>5} {row['ewgt_per_s']:>12.2f} {row['alut_pct']:>7.2f} "
            f"{row['bram_pct']:>7.2f} {row['dsp_pct']:>6.2f} {row['limiting_factor']:>16} "
            f"{'y' if row['feasible'] else 'n':>3}"
        )
    print(f"best feasible variant: {result.best_lanes} lane(s); "
          f"estimation took {result.estimation_seconds:.3f} s for {result.evaluated} variants")
    return 0


def _cmd_calibrate(args) -> int:
    device = get_device(args.device)
    synthesizer = SyntheticSynthesizer(device)
    dataset = synthesizer.characterize()
    db = calibrate_device(dataset, dsp_input_width=device.dsp_input_width)
    payload = db.as_dict()
    if args.output:
        args.output.write_text(json.dumps(payload, indent=2))
        print(f"wrote cost database for {device.name} to {args.output}")
    else:
        print(json.dumps(payload, indent=2))
    return 0


def _suite_config_from_args(args):
    import dataclasses

    from repro.suite import SuiteConfig

    kernels = tuple(args.kernels) if args.kernels else ()
    if args.tiny:
        config = SuiteConfig.tiny(kernels=kernels, devices=tuple(args.devices),
                                  max_lanes=args.max_lanes)
        if args.iterations is not None:
            config = dataclasses.replace(config, iterations=args.iterations)
    else:
        config = SuiteConfig(
            kernels=kernels,
            devices=tuple(args.devices),
            max_lanes=args.max_lanes,
            iterations=args.iterations,
        )
    overrides = {"forms": tuple(args.forms), "patterns": tuple(args.patterns)}
    if args.lanes is not None:
        overrides["lanes"] = tuple(args.lanes)
    if args.clocks is not None:
        overrides["clocks_mhz"] = tuple(args.clocks)
    return dataclasses.replace(config, **overrides)


def _cmd_suite_run(args) -> int:
    from repro.suite import WorkloadSuite

    try:
        config = _suite_config_from_args(args)
        suite = WorkloadSuite(config, backend=_explore_backend(args))
        run = suite.run()
    except (KeyError, ValueError) as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if args.output:
        run.report.write(args.output)
        print(f"wrote suite report to {args.output}", file=sys.stderr)
    if args.json:
        print(run.report.to_json(), end="")
    else:
        header = (f"{'kernel':>8} {'lanes':>5} {'device':>20} {'MHz':>6} "
                  f"{'form':>4} {'EKIT/s':>14} {'ok':>3}")
        print(header)
        print("-" * len(header))
        for row in suite.summary_rows(run):
            print(f"{row['kernel']:>8} {row['lanes']:>5} {row['device']:>20} "
                  f"{row['clock_mhz']:>6.0f} {row['form']:>4} "
                  f"{row['ekit_per_s']:>14.4f} {'y' if row['feasible'] else 'n':>3}")
        totals = run.report.totals
        print(f"costed {totals['points']} design points across "
              f"{totals['kernels']} kernels ({totals['feasible']} feasible) "
              f"in {run.wall_seconds:.3f} s ({run.variants_per_second:.1f} variants/s)")
        _print_stage_breakdown(run)
    return 0


def _print_stage_breakdown(run) -> None:
    """Per-stage wall time and cache hit rates of one suite batch."""
    stats = run.stats
    if not stats:
        return
    rows = run.sweep.stage_timing_rows()
    if rows:
        breakdown = "  ".join(
            f"{row['stage']} {row['seconds'] * 1e3:.1f}ms ({row['share'] * 100:.0f}%)"
            for row in rows
        )
        print(f"stage time: {breakdown}")
    counters = []
    for layer in ("family", "variant", "resource", "calibration", "disk"):
        pair = stats.get(layer)
        if isinstance(pair, list) and len(pair) == 2 and sum(pair):
            counters.append(f"{layer} {pair[0]}/{sum(pair)}")
    if counters:
        fallbacks = stats.get("family_fallbacks", 0)
        suffix = f", {fallbacks} full-path fallback(s)" if fallbacks else ""
        print(f"cache hits: {'  '.join(counters)}{suffix}")


def _cmd_suite_validate(args) -> int:
    from repro.validate import DEFAULT_MEMORY_TOLERANCE, DEFAULT_TOLERANCE, validate_suite

    tolerance = args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
    memory_tolerance = (args.memory_tolerance if args.memory_tolerance is not None
                        else DEFAULT_MEMORY_TOLERANCE)
    try:
        config = _suite_config_from_args(args)
        run = validate_suite(config, backend=_explore_backend(args),
                             tolerance=tolerance,
                             memory_tolerance=memory_tolerance,
                             cycle_accurate=args.cycle_accurate,
                             jobs=args.jobs)
    except (KeyError, ValueError) as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if args.output:
        run.report.write(args.output)
        print(f"wrote validation report to {args.output}", file=sys.stderr)
    if args.json:
        print(run.report.to_json(), end="")
        return 0 if run.ok else 1

    header = (f"{'kernel':>8} {'lanes':>5} {'form':>4} {'est cycles':>12} "
              f"{'analytic':>9} {'stepped':>9} {'gap':>4} {'rel err':>8} {'ok':>3}")
    print(header)
    print("-" * len(header))
    for name, records in run.records.items():
        for r in records:
            stepped = str(r.stepped.cycles) if r.stepped is not None else "-"
            gap = str(r.cycle_gap) if r.cycle_gap is not None else "-"
            print(f"{name:>8} {r.point.lanes:>5} {r.form:>4} "
                  f"{r.estimated_cycles:>12.1f} {r.analytic.cycles:>9} "
                  f"{stepped:>9} {gap:>4} {r.seconds_relative_error:>8.4f} "
                  f"{'y' if r.ok else 'N':>3}")
    totals = run.report.totals
    print(f"validated {totals['points']} design points across "
          f"{totals['kernels']} kernels: {totals['agreeing']} agree, "
          f"{totals['disagreeing']} disagree "
          f"(tolerance {tolerance:g}, max error "
          f"{totals['max_seconds_relative_error']:.4f}, max cycle gap "
          f"{totals['max_cycle_gap']})")
    if not run.ok:
        for record in run.disagreements:
            print(f"DISAGREEMENT at {record.point.label}: "
                  f"rel err {record.seconds_relative_error:.4f}, "
                  f"cycle gap {record.cycle_gap} (limit {record.pipeline_depth}), "
                  f"limiting match {record.limiting_factor_match}, "
                  f"memory legs "
                  f"{ {l.name: round(l.relative_error, 4) for l in record.legs} }",
                  file=sys.stderr)
        return 1
    return 0


def _cmd_suite_flow(args) -> int:
    from repro.compiler.codegen.testbench import DEFAULT_STIMULUS_SEED
    from repro.flows import DEFAULT_MAX_ITEMS, run_flow_suite

    seed = args.seed if args.seed is not None else DEFAULT_STIMULUS_SEED
    max_items = args.max_items if args.max_items is not None else DEFAULT_MAX_ITEMS
    try:
        config = _suite_config_from_args(args)
        run = run_flow_suite(config, backend=_explore_backend(args),
                             seed=seed, max_items=max_items, jobs=args.jobs)
    except (KeyError, ValueError) as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if args.output:
        run.report.write(args.output)
        print(f"wrote flow report to {args.output}", file=sys.stderr)
    if args.json:
        print(run.report.to_json(), end="")
        return 0 if run.ok else 1

    header = (f"{'kernel':>8} {'lanes':>5} {'items':>6} {'rtl cyc':>8} "
              f"{'analytic':>9} {'gap':>4} {'outputs':>8} {'red':>4} {'ok':>3}")
    print(header)
    print("-" * len(header))
    for name, families in run.records.items():
        for key, payload in sorted(families.items()):
            functional = payload.get("functional", {})
            cycles = payload.get("cycles", {})
            lanes = key.lstrip("l")
            print(f"{name:>8} {lanes:>5} {payload.get('items', 0):>6} "
                  f"{cycles.get('rtl', 0):>8} {cycles.get('analytic', 0):>9} "
                  f"{cycles.get('gap_analytic', 0):>4} "
                  f"{functional.get('outputs_checked', 0):>8} "
                  f"{'y' if functional.get('reductions_match') else 'N':>4} "
                  f"{'y' if payload.get('ok') else 'N':>3}")
    totals = run.report.totals
    print(f"verified {totals['families']} RTL families across "
          f"{totals['kernels']} kernels ({totals['points']} costed points): "
          f"{totals['ok']} ok, {totals['failing']} failing "
          f"(max cycle gap {totals['max_cycle_gap']}) "
          f"in {run.flow_seconds:.3f} s of RTL simulation")
    if not run.ok:
        for kernel, key in run.failures:
            payload = run.records[kernel][key]
            functional = payload.get("functional", {})
            cycles = payload.get("cycles", {})
            causes = []
            if payload.get("lint"):
                causes.append(f"lint: {payload['lint'][:3]}")
            if functional and not functional.get("ok"):
                causes.append(
                    f"functional: {functional.get('output_mismatches')} "
                    f"mismatches, reductions "
                    f"{'ok' if functional.get('reductions_match') else 'DISAGREE'}")
            if cycles and not cycles.get("ok"):
                causes.append(
                    f"cycles: gaps {cycles.get('gap_analytic')}/"
                    f"{cycles.get('gap_stepped')} exceed bound "
                    f"{cycles.get('bound')}")
            print(f"FAILURE at {kernel} {key}: "
                  + ("; ".join(causes) or "see --json payload"),
                  file=sys.stderr)
        return 1
    return 0


def _cmd_suite_diff(args) -> int:
    from repro.suite import diff_payloads, format_diffs, load_report

    try:
        left = load_report(args.left)
        right = load_report(args.right)
    except (OSError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if left.get("schema") != right.get("schema"):
        print(f"cannot diff different report layouts: {left.get('schema')!r} "
              f"vs {right.get('schema')!r}", file=sys.stderr)
        return 2
    diffs = diff_payloads(left, right, rtol=args.rtol)
    print(format_diffs(diffs, limit=args.limit))
    return 1 if diffs else 0


def _cmd_suite_record_golden(args) -> int:
    if args.validation and args.flows:
        print("--validation and --flows are mutually exclusive", file=sys.stderr)
        return 2
    if args.validation:
        from repro.validate import record_validation_goldens as _record
    elif args.flows:
        from repro.flows import record_flow_goldens as _record
    else:
        from repro.suite import record_goldens as _record

    kernels = tuple(args.kernels) if args.kernels else ()
    try:
        written = _record(args.dir, kernels=kernels)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    for path in written:
        print(f"recorded {path}")
    print(f"{len(written)} golden report(s) written — commit the diff to "
          "document the model change")
    return 0


def _cmd_suite_dse(args) -> int:
    from repro.suite import run_dse

    params = {}
    if args.resolution is not None:
        params["resolution"] = args.resolution
    if args.budget is not None:
        params["budget"] = args.budget
    if args.keep is not None:
        params["keep_fraction"] = args.keep
    try:
        config = _suite_config_from_args(args)
        backend = _explore_backend(args, optimizer=args.optimizer)
        run = run_dse(config, args.optimizer, backend=backend,
                      params=params or None)
    except (KeyError, ValueError) as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if args.output:
        run.report.write(args.output)
        print(f"wrote DSE report to {args.output}", file=sys.stderr)
    if args.json:
        print(run.report.to_json(), end="")
        return 0
    totals = run.report.totals
    print(f"{args.optimizer} DSE over {totals['runs']} run(s): "
          f"{totals['points']} point(s) costed in {totals['rounds']} "
          f"round(s) ({run.wall_seconds:.3f} s)")
    for label in sorted(run.report.payload["runs"]):
        payload = run.report.payload["runs"][label]
        result = payload["result"]
        if result["optimizer"] == "fmax":
            finite = sum(1 for f in result["families"]
                         if f["fmax_mhz"] is not None)
            print(f"  {label}: {payload['evaluated']} probe(s), "
                  f"{finite}/{len(result['families'])} design families "
                  f"with a finite fmax")
        else:
            line = _describe_best(result.get("best"))
            suffix = f" — {line}" if line else ""
            print(f"  {label}: {payload['evaluated']} point(s){suffix}")
    return 0


_SUITE_COMMANDS = {
    "run": _cmd_suite_run,
    "validate": _cmd_suite_validate,
    "flow": _cmd_suite_flow,
    "dse": _cmd_suite_dse,
    "diff": _cmd_suite_diff,
    "record-golden": _cmd_suite_record_golden,
}


def _cmd_suite(args) -> int:
    return _SUITE_COMMANDS[args.suite_command](args)


def _flow_settings_from_args(args):
    from repro.compiler.codegen.testbench import DEFAULT_STIMULUS_SEED
    from repro.flows import FlowSettings

    return FlowSettings(
        run_root=args.output,
        seed=args.seed if args.seed is not None else DEFAULT_STIMULUS_SEED,
        n_items=args.items,
        use_cache=args.use_cache,
    )


def _print_flow_result(result, as_json: bool) -> int:
    payload = result.payload
    if as_json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if result.ok else 1
    functional = payload.get("functional", {})
    cycles = payload.get("cycles", {})
    cached = " (cached)" if result.cached else ""
    print(f"flow {result.flow} on {result.design}"
          f"{' @' + result.function if result.function else ''}: "
          f"{'OK' if result.ok else 'FAILED'}{cached}")
    if payload.get("lint"):
        for problem in payload["lint"]:
            print(f"  lint: {problem}")
    for line in payload.get("error", []):
        print(f"  error: {line}")
    if functional:
        print(f"  functional: {functional.get('outputs_checked', 0)} output "
              f"words checked, {functional.get('output_mismatches', 0)} "
              f"mismatches; reductions "
              f"{'match' if functional.get('reductions_match') else 'DISAGREE'}")
        for miss in functional.get("first_mismatches", []):
            print(f"    mismatch {miss['stream']}[{miss['index']}]: "
                  f"expected {miss['expected']}, got {miss['actual']}")
    if cycles:
        print(f"  cycles: rtl {cycles.get('rtl')}, analytic "
              f"{cycles.get('analytic')}, stepped {cycles.get('stepped')} "
              f"(gaps {cycles.get('gap_analytic')}/{cycles.get('gap_stepped')}, "
              f"bound {cycles.get('bound')})")
    if result.run_dir is not None:
        print(f"  run directory: {result.run_dir}")
    print(f"  wall: {result.wall_seconds:.3f} s")
    return 0 if result.ok else 1


def _run_sim_flow(module, args, function_name=None) -> int:
    from repro.flows import ToolUnavailableError, default_sim_flow

    flow_cls = default_sim_flow(args.backend)
    if not flow_cls.available():
        print(f"backend {args.backend!r} is not available on this machine "
              "(tool not on PATH); use --backend pyrtl", file=sys.stderr)
        return 2
    try:
        flow = flow_cls(module, _flow_settings_from_args(args),
                        function_name=function_name)
        result = flow.run()
    except (ValueError, ToolUnavailableError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return _print_flow_result(result, args.json)


def _cmd_flow_run(args) -> int:
    from repro.ir.errors import IRError

    compiler = TybecCompiler(CompilationOptions())
    try:
        module = compiler.parse(args.design.read_text(), name=args.design.stem)
    except (OSError, IRError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return _run_sim_flow(module, args, function_name=args.function)


def _cmd_flow_sim(args) -> int:
    from repro.functional.typetrans import TransformationError

    kernel = get_kernel(args.kernel)
    grid = tuple(args.grid) if args.grid else kernel.default_grid
    try:
        module = kernel.build_module(lanes=args.lanes, grid=grid)
    except (ValueError, TransformationError) as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    return _run_sim_flow(module, args)


def _cmd_flow_report(args) -> int:
    path = args.path
    if path.is_dir():
        path = path / "result.json"
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        print(f"cannot read flow result: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"flow result at {path}:")
    for key in ("backend", "function", "items", "seed", "ok"):
        if key in payload:
            print(f"  {key}: {payload[key]}")
    for section in ("geometry", "netlist", "cycles"):
        if section in payload:
            rendered = ", ".join(f"{k}={v}" for k, v in payload[section].items())
            print(f"  {section}: {rendered}")
    functional = payload.get("functional")
    if functional:
        print(f"  functional: {functional.get('outputs_checked', 0)} checked, "
              f"{functional.get('output_mismatches', 0)} mismatches")
    return 0


_FLOW_COMMANDS = {
    "run": _cmd_flow_run,
    "sim": _cmd_flow_sim,
    "report": _cmd_flow_report,
}


def _cmd_flow(args) -> int:
    return _FLOW_COMMANDS[args.flow_command](args)


def _cmd_cache_stats(args) -> int:
    from repro.cost.cache import cache_location, default_disk_cache

    location = cache_location()
    if location is None:
        print("persistent cache: disabled (TYBEC_CACHE_DIR is empty/off)")
        return 0
    stats = default_disk_cache().stats()
    print(f"persistent cache at {stats['root']} "
          f"(schema v{stats['schema_version']}, "
          f"capacity {stats['capacity_per_namespace']} entries/namespace)")
    if not stats["namespaces"]:
        print("  empty — run `tybec cache warm` or any cost/suite command")
    for name, info in stats["namespaces"].items():
        print(f"  {name:>12}: {info['entries']:4d} entries, {info['bytes']:9d} bytes")
    return 0


def _cmd_cache_clear(args) -> int:
    from repro.cost.cache import cache_location, default_disk_cache

    if cache_location() is None:
        print("persistent cache: disabled — nothing to clear")
        return 0
    cache = default_disk_cache()
    removed = cache.clear()
    print(f"removed {removed} cached artifact(s) from {cache.root}")
    return 0


def _cmd_cache_warm(args) -> int:
    import time

    from repro.compiler import CompilationOptions, EstimationPipeline, LaneFamilyHandle
    from repro.cost.cache import cache_location, default_disk_cache
    from repro.kernels import REGISTRY
    from repro.suite import tiny_grid

    if cache_location() is None:
        print("persistent cache: disabled — set TYBEC_CACHE_DIR to enable",
              file=sys.stderr)
        return 2
    started = time.perf_counter()
    names = [n.lower() for n in args.kernels] if args.kernels else REGISTRY.names()
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        print(f"unknown kernels {unknown}; available: {REGISTRY.names()}",
              file=sys.stderr)
        return 2
    for device_name in args.devices:
        device = get_device(device_name)
        pipeline = EstimationPipeline(CompilationOptions(device=device))
        pipeline.calibrate()
        print(f"calibrated {device.name}")
        for name in names:
            kernel = REGISTRY[name]()
            # the two grids the stock flows sweep: the kernel default
            # (explore) and the capped smoke grid (suite --tiny / goldens)
            for grid in {kernel.default_grid, tiny_grid(kernel.default_grid)}:
                pipeline.analyze(LaneFamilyHandle(kernel=kernel, lanes=1, grid=grid))
            print(f"  analysed design family of {name}")
    stats = default_disk_cache().stats()
    entries = sum(info["entries"] for info in stats["namespaces"].values())
    print(f"warmed {entries} artifact(s) in {time.perf_counter() - started:.2f} s "
          f"at {stats['root']}")
    return 0


_CACHE_COMMANDS = {
    "stats": _cmd_cache_stats,
    "clear": _cmd_cache_clear,
    "warm": _cmd_cache_warm,
}


def _cmd_cache(args) -> int:
    return _CACHE_COMMANDS[args.cache_command](args)


def _cmd_serve(args) -> int:
    import signal
    import threading

    from repro.service import serve

    try:
        server = serve(host=args.host, port=args.port,
                       max_concurrency=args.max_concurrency,
                       verbose=args.verbose,
                       request_deadline=args.request_deadline)
    except OSError as exc:
        print(f"cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    print(f"tybec exploration service listening on "
          f"http://{args.host}:{server.port} "
          f"({args.max_concurrency} concurrent sweep(s); Ctrl-C to stop)",
          flush=True)

    # SIGTERM means "drain, don't drop": stop accepting, let every
    # in-flight stream finish, then exit 0.  shutdown() must run off the
    # serve_forever thread (it blocks until the accept loop exits, and
    # the signal handler runs *on* that thread), hence the helper thread.
    def _on_sigterm(signum, frame):
        print("SIGTERM: draining in-flight requests", flush=True)
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    finally:
        signal.signal(signal.SIGTERM, previous)
        drained = server.drain(args.drain_timeout)
        server.server_close()
        if drained:
            print("drained; exiting", flush=True)
        else:
            print(f"drain timed out after {args.drain_timeout:g}s; "
                  f"{server.inflight_requests()} request(s) abandoned",
                  file=sys.stderr, flush=True)
    return 0


def _service_client(args):
    from repro.service import ServiceClient

    return ServiceClient(host=args.host, port=args.port)


def _cmd_client_cost(args) -> int:
    client = _service_client(args)
    response = client.cost(args.design.read_text(), device=args.device,
                           grid=tuple(args.grid), iterations=args.iterations,
                           pattern=args.pattern, name=args.design.stem)
    payload = response.payload
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    throughput = payload.get("throughput", {})
    feasibility = payload.get("feasibility", {})
    print(f"costed {args.design.name} on {args.device} "
          f"({response.role}, fingerprint {response.fingerprint[:12]}):")
    print(f"  EKIT {throughput.get('ekit_per_s', 0.0):.4f}/s, "
          f"form {throughput.get('form')}, "
          f"feasible {'y' if feasibility.get('feasible') else 'n'} "
          f"(limiting: {feasibility.get('limiting_factor')})")
    return 0


def _cmd_client_suite(args) -> int:
    from repro.suite.report import canonical_json

    if args.jobs:
        print("--jobs is a batch-mode flag; the service owns its own "
              "concurrency (see tybec serve --max-concurrency)", file=sys.stderr)
        return 2
    config = _suite_config_from_args(args)
    spec = config.as_dict()
    spec["dense"] = bool(args.dense)
    client = _service_client(args)
    progress = None
    if not args.json:
        progress = lambda event: print(  # noqa: E731 - tiny stream hook
            f"  point {event['index']}: {event['point']['kernel']} "
            f"l{event['point']['lanes']} on {event['point']['device']}",
            file=sys.stderr)
    response = client.suite(spec, on_entry=progress)
    text = canonical_json(response.payload)
    if args.output:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(text)
        print(f"wrote suite report to {args.output}", file=sys.stderr)
    if args.json:
        print(text, end="")
    else:
        totals = response.payload["totals"]
        print(f"costed {totals['points']} design points across "
              f"{totals['kernels']} kernels ({totals['feasible']} feasible) "
              f"via the service ({response.role}"
              f"{', coalesced' if response.coalesced else ''})")
    return 0


def _cmd_client_metrics(args) -> int:
    print(json.dumps(_service_client(args).metrics(), indent=2, sort_keys=True))
    return 0


def _cmd_client_health(args) -> int:
    payload = _service_client(args).health()
    print(json.dumps(payload, sort_keys=True))
    return 0 if payload.get("ok") else 1


_CLIENT_COMMANDS = {
    "cost": _cmd_client_cost,
    "suite": _cmd_client_suite,
    "metrics": _cmd_client_metrics,
    "health": _cmd_client_health,
}


def _cmd_client(args) -> int:
    from repro.service import ServiceError

    try:
        return _CLIENT_COMMANDS[args.client_command](args)
    except ConnectionError as exc:
        print(f"cannot reach the service at {args.host}:{args.port}: {exc} "
              f"(is `tybec serve` running?)", file=sys.stderr)
        return 2
    except (OSError, ServiceError, KeyError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 1


def _cmd_stream_bench(args) -> int:
    device = get_device(args.device)
    sim = MemorySystemSimulator(device)
    model = SustainedBandwidthModel.from_simulator(sim, sides=tuple(args.sides))
    print(f"sustained bandwidth on {device.name} (peak {model.peak_gbps:.1f} GB/s)")
    print(f"{'side':>6} {'contiguous GB/s':>16} {'strided GB/s':>14}")
    for side in args.sides:
        nbytes = side * side * 4
        cont = model.sustained_gbps(nbytes)
        strided = model.sustained_gbps(nbytes, "strided")
        print(f"{side:>6} {cont:>16.3f} {strided:>14.3f}")
    return 0


def _cmd_trace_summarize(args) -> int:
    from repro.obs.trace import format_trace_summary, load_trace, summarize_trace

    try:
        header, records = load_trace(args.path)
    except (OSError, ValueError) as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 2
    summary = summarize_trace(records, top=args.top)
    if args.json:
        print(json.dumps({"header": header, **summary}, indent=2,
                         sort_keys=True))
        return 0
    print(f"trace {header.get('trace_id', '?')} at {args.path}")
    print(format_trace_summary(summary))
    return 0


def _cmd_trace(args) -> int:
    return {"summarize": _cmd_trace_summarize}[args.trace_command](args)


def _cmd_bench_report(args) -> int:
    from repro.obs.bench import (
        DEFAULT_RESULTS_DIR,
        collect_bench_metrics,
        format_bench_table,
    )

    results_dir = args.dir if args.dir is not None else DEFAULT_RESULTS_DIR
    if not results_dir.is_dir():
        print(f"no benchmark results directory at {results_dir} "
              f"(run the benchmarks/ suite first)", file=sys.stderr)
        return 2
    rows = collect_bench_metrics(results_dir)
    failing = [row for row in rows if row.ok is False]
    if args.json:
        print(json.dumps([row.as_dict() for row in rows], indent=2))
    else:
        print(format_bench_table(rows))
    return 1 if args.strict and failing else 0


def _cmd_bench(args) -> int:
    return {"report": _cmd_bench_report}[args.bench_command](args)


_COMMANDS = {
    "cost": _cmd_cost,
    "emit": _cmd_emit,
    "explore": _cmd_explore,
    "calibrate": _cmd_calibrate,
    "stream-bench": _cmd_stream_bench,
    "flow": _cmd_flow,
    "suite": _cmd_suite,
    "cache": _cmd_cache,
    "serve": _cmd_serve,
    "client": _cmd_client,
    "trace": _cmd_trace,
    "bench": _cmd_bench,
}


def main(argv: list[str] | None = None) -> int:
    from repro.obs.logs import parse_level, setup_logging
    from repro.obs.trace import TRACE_ENV, activate_from_env, uninstall_tracer

    args = build_parser().parse_args(argv)
    if args.log_level:
        setup_logging(parse_level(args.log_level))
    prior_env = os.environ.get(TRACE_ENV)
    if args.trace is not None:
        # the env var is the single activation path (workers and library
        # code read it too); the flag just sets it for this invocation
        os.environ[TRACE_ENV] = str(args.trace)
    tracer = activate_from_env()
    try:
        return _COMMANDS[args.command](args)
    finally:
        if tracer is not None:
            uninstall_tracer()
        if args.trace is not None:
            if prior_env is None:
                os.environ.pop(TRACE_ENV, None)
            else:
                os.environ[TRACE_ENV] = prior_env


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
