"""Node power and energy model (used for Figure 18).

The paper measures the increase over idle power of the host+device node on
a wall power meter, for both the CPU-only and the CPU+FPGA solutions, and
reports the *delta energy* normalised against the CPU-only solution.

This module provides a simple calibrated power model with the behaviour
that produces those curves: a CPU whose active power rises well above
idle, and an FPGA board whose static power is modest and whose dynamic
power scales with the amount of configured logic that is toggling.  The
absolute wattages are representative desktop/accelerator figures; Figure
18 only depends on their ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.substrate.fpga_device import FPGADevice
from repro.substrate.synthesis import ResourceUsage

__all__ = ["NodePowerModel", "EnergyReport"]


@dataclass(frozen=True)
class EnergyReport:
    """Energy accounting for one application run."""

    label: str
    runtime_s: float
    idle_power_w: float
    active_power_w: float

    @property
    def delta_power_w(self) -> float:
        return self.active_power_w - self.idle_power_w

    @property
    def delta_energy_j(self) -> float:
        """Increase over idle energy consumption — the quantity of Figure 18."""
        return self.delta_power_w * self.runtime_s

    @property
    def total_energy_j(self) -> float:
        return self.active_power_w * self.runtime_s

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "runtime_s": self.runtime_s,
            "idle_power_w": self.idle_power_w,
            "active_power_w": self.active_power_w,
            "delta_power_w": self.delta_power_w,
            "delta_energy_j": self.delta_energy_j,
        }


@dataclass
class NodePowerModel:
    """Power model of the host + accelerator node.

    Attributes
    ----------
    cpu_idle_w:
        Node power with the CPU idle (the baseline subtracted by the
        paper's measurement methodology).
    cpu_active_w:
        Node power with the CPU-only kernel running (single socket busy).
    fpga_static_w:
        Additional board power when the FPGA is configured but idle.
    fpga_dynamic_alut_w / fpga_dynamic_dsp_w / fpga_dynamic_bram_w:
        Dynamic power per utilised resource at the default toggle rate.
    host_assist_w:
        CPU power added while the host orchestrates FPGA streams (DMA,
        driver) — far below a fully busy core.
    """

    cpu_idle_w: float = 38.0
    cpu_active_w: float = 96.0
    fpga_static_w: float = 11.0
    fpga_dynamic_alut_w: float = 2.2e-5
    fpga_dynamic_dsp_w: float = 9.0e-4
    fpga_dynamic_bram_w: float = 3.0e-7  # per bit
    fpga_dynamic_reg_w: float = 6.0e-6
    host_assist_w: float = 9.0
    toggle_rate: float = 0.15

    # -- component powers -------------------------------------------------
    def cpu_run_power(self) -> float:
        """Node power during a CPU-only run."""
        return self.cpu_active_w

    def fpga_dynamic_power(self, usage: ResourceUsage, clock_mhz: float = 200.0,
                           toggle_rate: float | None = None) -> float:
        """Dynamic power of the configured FPGA logic."""
        toggle = self.toggle_rate if toggle_rate is None else toggle_rate
        freq_scale = clock_mhz / 200.0
        return freq_scale * toggle / 0.15 * (
            usage.alut * self.fpga_dynamic_alut_w
            + usage.reg * self.fpga_dynamic_reg_w
            + usage.dsp * self.fpga_dynamic_dsp_w
            + usage.bram_bits * self.fpga_dynamic_bram_w
        )

    def fpga_run_power(
        self,
        usage: ResourceUsage,
        device: FPGADevice | None = None,
        clock_mhz: float | None = None,
    ) -> float:
        """Node power during an FPGA-accelerated run."""
        mhz = clock_mhz or (device.fmax_mhz if device else 200.0)
        return (
            self.cpu_idle_w
            + self.host_assist_w
            + self.fpga_static_w
            + self.fpga_dynamic_power(usage, mhz)
        )

    # -- reports ------------------------------------------------------------
    def cpu_energy(self, label: str, runtime_s: float) -> EnergyReport:
        return EnergyReport(
            label=label,
            runtime_s=runtime_s,
            idle_power_w=self.cpu_idle_w,
            active_power_w=self.cpu_run_power(),
        )

    def fpga_energy(
        self,
        label: str,
        runtime_s: float,
        usage: ResourceUsage,
        device: FPGADevice | None = None,
        clock_mhz: float | None = None,
    ) -> EnergyReport:
        return EnergyReport(
            label=label,
            runtime_s=runtime_s,
            idle_power_w=self.cpu_idle_w,
            active_power_w=self.fpga_run_power(usage, device, clock_mhz),
        )
