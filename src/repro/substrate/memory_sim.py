"""Transaction-level DRAM + PCIe memory-system simulator.

This is the stand-in for the paper's sustained-bandwidth experiments
(§V-C, Figure 10), which extended the STREAM benchmark to OpenCL and ran
it through SDAccel on an Alpha-Data ADM-PCIE-7V3 board.  The simulator
models the mechanisms that produce the measured behaviour:

* a fixed software/DMA setup cost per kernel launch and buffer transfer,
  which dominates small transfers (the rising part of the contiguous
  curve, 0.3 GB/s at 100x100 elements);
* burst-oriented DRAM access through the memory interface, which
  approaches a device-efficiency-limited plateau for large contiguous
  transfers (~6.3 GB/s in the paper);
* per-element transactions with row-buffer misses for strided (or random)
  access, which collapse sustained bandwidth by roughly two orders of
  magnitude (0.04-0.07 GB/s), essentially independent of the stride value.

The same models provide the host-transfer times (``HPB * rhoH``) and
device-DRAM stream times (``GPB * rhoG``) used by the EKIT throughput
expressions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.models.streaming import AccessPattern, PatternKind
from repro.substrate.fpga_device import FPGADevice

__all__ = [
    "DRAMConfig",
    "PCIeConfig",
    "StreamMeasurement",
    "MemorySystemSimulator",
]


@dataclass(frozen=True)
class DRAMConfig:
    """Device DRAM and memory-interface parameters.

    The defaults model a single DDR3-1600 channel behind a 512-bit AXI
    memory interface clocked conservatively, which is what gives the
    ~6.4 GB/s practical ceiling observed in the paper rather than the
    12.8 GB/s datasheet peak.
    """

    bus_width_bits: int = 64
    io_clock_mhz: float = 800.0          # DDR: two transfers per clock
    burst_bytes: int = 64                # one interface burst
    row_bytes: int = 8192
    banks: int = 8
    t_rcd_ns: float = 13.75
    t_rp_ns: float = 13.75
    t_cas_ns: float = 13.75
    #: per-transaction controller/interconnect overhead that cannot be hidden
    #: for dependent (non-pipelined) transactions
    transaction_overhead_ns: float = 40.0
    #: fraction of the datasheet peak reachable by a well-formed burst stream
    #: through the vendor memory interface
    interface_efficiency: float = 0.5

    @property
    def peak_gbps(self) -> float:
        """Datasheet peak bandwidth in GB/s."""
        return self.bus_width_bits / 8 * self.io_clock_mhz * 2 / 1e3

    @property
    def effective_peak_gbps(self) -> float:
        """Peak sustainable by the memory interface for ideal streams."""
        return self.peak_gbps * self.interface_efficiency

    @property
    def row_miss_penalty_ns(self) -> float:
        return self.t_rp_ns + self.t_rcd_ns + self.t_cas_ns


@dataclass(frozen=True)
class PCIeConfig:
    """Host link parameters."""

    gen: int = 2
    lanes: int = 8
    tlp_payload_bytes: int = 256
    tlp_header_bytes: int = 26
    #: software + descriptor setup per DMA transfer
    dma_setup_us: float = 30.0
    #: driver/runtime overhead per kernel-instance launch
    kernel_launch_us: float = 100.0
    protocol_efficiency: float = 0.95

    _PER_LANE_GBPS = {1: 0.25, 2: 0.5, 3: 0.985, 4: 1.969}

    def __post_init__(self) -> None:
        if self.gen not in self._PER_LANE_GBPS:
            raise ValueError(
                f"unsupported PCIe generation {self.gen!r}; supported "
                f"generations: {sorted(self._PER_LANE_GBPS)}"
            )
        if self.lanes < 1:
            raise ValueError(f"PCIe lanes must be >= 1, got {self.lanes}")

    @property
    def raw_gbps(self) -> float:
        return self._PER_LANE_GBPS[self.gen] * self.lanes

    @property
    def effective_gbps(self) -> float:
        payload_eff = self.tlp_payload_bytes / (self.tlp_payload_bytes + self.tlp_header_bytes)
        return self.raw_gbps * payload_eff * self.protocol_efficiency

    @staticmethod
    def for_device(device: FPGADevice) -> "PCIeConfig":
        return PCIeConfig(gen=device.pcie_gen, lanes=device.pcie_lanes)


@dataclass(frozen=True)
class StreamMeasurement:
    """One sustained-bandwidth measurement (one point of Figure 10)."""

    elements: int
    element_bytes: int
    pattern: PatternKind
    stride_elements: int
    total_bytes: int
    seconds: float
    sustained_gbps: float

    def as_dict(self) -> dict:
        return {
            "elements": self.elements,
            "element_bytes": self.element_bytes,
            "pattern": self.pattern.value,
            "stride_elements": self.stride_elements,
            "total_bytes": self.total_bytes,
            "seconds": self.seconds,
            "sustained_gbps": self.sustained_gbps,
        }


class MemorySystemSimulator:
    """Analytic transaction-level model of the board's memory system."""

    def __init__(
        self,
        device: FPGADevice | None = None,
        dram: DRAMConfig | None = None,
        pcie: PCIeConfig | None = None,
    ):
        self.device = device
        if dram is None:
            if device is not None:
                # scale interface efficiency so the effective peak tracks the
                # device's datasheet DRAM bandwidth
                dram = DRAMConfig(
                    io_clock_mhz=device.dram_peak_gbps / (64 / 8) / 2 * 1e3,
                )
            else:
                dram = DRAMConfig()
        self.dram = dram
        self.pcie = pcie or (PCIeConfig.for_device(device) if device else PCIeConfig())

    # ------------------------------------------------------------------
    # Device DRAM streams (kernel side)
    # ------------------------------------------------------------------
    def dram_stream_time(
        self,
        n_elements: int,
        element_bytes: int = 4,
        pattern: AccessPattern | None = None,
        *,
        include_setup: bool = True,
    ) -> float:
        """Seconds to stream ``n_elements`` from device DRAM to the kernel."""
        if n_elements <= 0:
            return 0.0
        pattern = pattern or AccessPattern.contiguous(element_bytes)
        total_bytes = n_elements * element_bytes
        setup_s = (self.pcie.kernel_launch_us + self.pcie.dma_setup_us) * 1e-6 if include_setup else 0.0

        if pattern.is_contiguous:
            # bursts pipeline through the interface; row misses are amortised
            data_s = total_bytes / (self.dram.effective_peak_gbps * 1e9)
            rows = max(1, math.ceil(total_bytes / self.dram.row_bytes))
            row_s = rows * self.dram.row_miss_penalty_ns * 1e-9 * 0.1  # mostly hidden
            return setup_s + data_s + row_s

        # strided / random: one transaction per element, overhead not hidden
        stride_bytes = pattern.stride_bytes
        if stride_bytes >= self.dram.row_bytes:
            row_miss_fraction = 1.0
        else:
            # consecutive accesses share a row every row_bytes/stride accesses
            row_miss_fraction = stride_bytes / self.dram.row_bytes
        per_element_ns = (
            self.dram.transaction_overhead_ns
            + row_miss_fraction * self.dram.row_miss_penalty_ns
            + self.dram.t_cas_ns * (1 - row_miss_fraction)
            + element_bytes / (self.dram.peak_gbps)  # data beat itself
        )
        return setup_s + n_elements * per_element_ns * 1e-9

    def dram_sustained_gbps(
        self,
        n_elements: int,
        element_bytes: int = 4,
        pattern: AccessPattern | None = None,
    ) -> float:
        """Sustained device-DRAM bandwidth for a stream, in GB/s."""
        seconds = self.dram_stream_time(n_elements, element_bytes, pattern)
        if seconds == 0:
            return 0.0
        return n_elements * element_bytes / seconds / 1e9

    # ------------------------------------------------------------------
    # Host <-> device transfers (PCIe)
    # ------------------------------------------------------------------
    def host_transfer_time(self, nbytes: int, *, include_setup: bool = True) -> float:
        """Seconds to move ``nbytes`` between host and device DRAM by DMA."""
        if nbytes <= 0:
            return 0.0
        setup_s = self.pcie.dma_setup_us * 1e-6 if include_setup else 0.0
        return setup_s + nbytes / (self.pcie.effective_gbps * 1e9)

    def host_sustained_gbps(self, nbytes: int) -> float:
        seconds = self.host_transfer_time(nbytes)
        return nbytes / seconds / 1e9 if seconds else 0.0

    # ------------------------------------------------------------------
    # The STREAM-style benchmark of Figure 10
    # ------------------------------------------------------------------
    def stream_benchmark(
        self,
        side: int,
        element_bytes: int = 4,
        pattern: str | PatternKind = PatternKind.CONTIGUOUS,
        stride_elements: int | None = None,
    ) -> StreamMeasurement:
        """Measure sustained bandwidth for one square-array configuration.

        ``side`` is the size of one dimension of a square 2-D array (the
        horizontal axis of Figure 10); for strided access the stride equals
        ``side`` elements, exactly as in the paper's experiment.
        """
        if side <= 0:
            raise ValueError("side must be positive")
        kind = PatternKind(pattern)
        n_elements = side * side
        if kind is PatternKind.CONTIGUOUS:
            access = AccessPattern.contiguous(element_bytes)
        else:
            stride = stride_elements if stride_elements is not None else side
            access = (
                AccessPattern.strided(max(2, stride), element_bytes)
                if kind is PatternKind.STRIDED
                else AccessPattern.random(element_bytes, typical_span_elements=n_elements)
            )
        seconds = self.dram_stream_time(n_elements, element_bytes, access)
        total_bytes = n_elements * element_bytes
        return StreamMeasurement(
            elements=n_elements,
            element_bytes=element_bytes,
            pattern=kind,
            stride_elements=access.stride_elements,
            total_bytes=total_bytes,
            seconds=seconds,
            sustained_gbps=total_bytes / seconds / 1e9,
        )

    DEFAULT_SIDES = (100, 500, 1000, 1500, 2000, 2500, 3000, 3500, 4000, 4500, 5000, 6000)

    def run_stream_suite(
        self,
        sides: tuple[int, ...] = DEFAULT_SIDES,
        element_bytes: int = 4,
    ) -> list[StreamMeasurement]:
        """Run the full Figure-10 suite: contiguous and strided at each size."""
        measurements: list[StreamMeasurement] = []
        for side in sides:
            measurements.append(self.stream_benchmark(side, element_bytes, PatternKind.CONTIGUOUS))
            measurements.append(self.stream_benchmark(side, element_bytes, PatternKind.STRIDED))
        return measurements
