"""Baseline commercial-HLS flow model (the paper's ``fpga-maxJ`` point).

The case study compares the TyTra-generated design against a
straightforward Maxeler MaxJ implementation of the same kernel.  The paper
characterises that baseline as exploiting the pipeline parallelism the HLS
compiler extracts automatically, but performing no architectural
exploration (a single kernel pipeline, vendor-default stream handling).

This module models such a flow:

* a single-lane pipeline whose depth is somewhat larger than the TyTra
  schedule for the same dataflow graph (HLS tools insert conservative
  interface and control stages);
* vendor-default stream handling with a per-kernel-call overhead for
  stream setup and synchronisation;
* data staged through device DRAM (form-B execution) with the same memory
  system as the TyTra design — the baseline differs in architecture, not
  in the board.

It also documents the *estimation latency* of such tools (the paper quotes
close to 70 s for SDAccel's preliminary estimate of one variant, against
0.3 s for the TyTra cost model), used by the estimator-speed experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.substrate.fpga_device import FPGADevice
from repro.substrate.memory_sim import MemorySystemSimulator
from repro.substrate.pipeline_sim import PipelineSimulator, PipelineSpec, SimulationResult

__all__ = ["HLSKernelCharacteristics", "BaselineHLSFlow"]


@dataclass(frozen=True)
class HLSKernelCharacteristics:
    """What the baseline HLS tool needs to know about a kernel."""

    name: str
    operations_per_item: int
    input_words_per_item: int
    output_words_per_item: int
    element_bytes: int = 4
    #: critical-path latency of the dataflow graph in cycles (as a TyTra
    #: schedule would find); the HLS pipeline is modelled as deeper.
    dataflow_depth: int = 16
    max_offset_span_words: int = 0

    @property
    def words_per_item(self) -> int:
        return self.input_words_per_item + self.output_words_per_item


@dataclass
class BaselineHLSFlow:
    """A MaxJ-like single-pipeline HLS implementation model."""

    device: FPGADevice
    memory: MemorySystemSimulator | None = None
    #: HLS pipelines carry extra interface/control stages over a hand
    #: scheduled datapath.
    pipeline_depth_factor: float = 1.4
    pipeline_depth_extra: int = 12
    #: per kernel-call stream setup / synchronisation overhead (seconds)
    per_call_overhead_s: float = 120e-6
    #: additional per-stream overhead per call (the paper notes the
    #: overhead of handling multiple streams per array dominates at small
    #: grid sizes)
    per_stream_overhead_s: float = 18e-6
    #: fraction of the device clock the vendor flow typically closes timing at
    clock_derating: float = 0.9

    def __post_init__(self) -> None:
        if self.memory is None:
            self.memory = MemorySystemSimulator(self.device)

    # ------------------------------------------------------------------
    def build_pipeline_spec(self, kernel: HLSKernelCharacteristics) -> PipelineSpec:
        """The single-lane pipeline the HLS tool would build."""
        depth = int(kernel.dataflow_depth * self.pipeline_depth_factor) + self.pipeline_depth_extra
        return PipelineSpec(
            name=f"{kernel.name}-maxj",
            lanes=1,
            vectorization=1,
            pipeline_depth=depth,
            instructions=kernel.operations_per_item,
            cycles_per_instruction=1,
            offset_fill_words=kernel.max_offset_span_words,
            input_words_per_item=kernel.input_words_per_item,
            output_words_per_item=kernel.output_words_per_item,
            element_bytes=kernel.element_bytes,
            clock_mhz=self.device.fmax_mhz * self.clock_derating,
        )

    def call_overhead(self, kernel: HLSKernelCharacteristics, streams: int | None = None) -> float:
        n_streams = streams if streams is not None else (
            kernel.input_words_per_item + kernel.output_words_per_item
        )
        return self.per_call_overhead_s + n_streams * self.per_stream_overhead_s

    # ------------------------------------------------------------------
    def estimate_runtime(
        self,
        kernel: HLSKernelCharacteristics,
        n_items: int,
        iterations: int,
        *,
        include_host_transfer: bool = True,
    ) -> tuple[float, SimulationResult]:
        """Total runtime of the baseline implementation (form-B execution).

        Returns ``(seconds, kernel_instance_simulation)``.
        """
        spec = self.build_pipeline_spec(kernel)
        simulator = PipelineSimulator(self.memory)
        memory_gbps = self.memory.dram.effective_peak_gbps
        instance = simulator.run_kernel_instance(spec, n_items, memory_gbps)

        per_call = instance.seconds + self.call_overhead(kernel)
        total = iterations * per_call
        if include_host_transfer:
            nbytes = n_items * kernel.words_per_item * kernel.element_bytes
            total += 2 * self.memory.host_transfer_time(nbytes)
        return total, instance

    # ------------------------------------------------------------------
    #: Estimation latency model of commercial flows.  The paper reports the
    #: SDAccel preliminary estimate of a single variant taking close to 70 s
    #: versus 0.3 s for the TyTra cost model (a >200x ratio).
    ESTIMATE_BASE_SECONDS = 55.0
    ESTIMATE_PER_INSTRUCTION_SECONDS = 0.6

    def estimate_report_time(self, n_instructions: int) -> float:
        """Modelled wall-clock time of the vendor tool's preliminary estimate."""
        return self.ESTIMATE_BASE_SECONDS + self.ESTIMATE_PER_INSTRUCTION_SECONDS * n_instructions
