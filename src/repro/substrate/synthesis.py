"""Synthetic synthesiser: the stand-in for Quartus / Vivado synthesis runs.

The paper's resource cost model is *empirical*: a one-time set of synthesis
experiments per device yields per-instruction resource figures, from which
simple first/second-order expressions are fitted (Figure 9), and the
accuracy of the overall model is judged against the "actual" utilisation
reported by the vendor tool after full synthesis (Table II).

Neither Quartus nor Vivado can run here, so this module provides a
first-principles technology mapper whose outputs have the same *functional
form* real fabric exhibits:

* ripple-carry adders — ALUTs linear in width;
* multipliers — DSP blocks in steps of the 18-bit native width with a
  piece-wise-linear ALUT glue component (narrow multiplies and multiplies
  by constants map to LUT logic only);
* non-restoring dividers — ALUTs quadratic in width (the paper's
  ``x^2 + 3.7x - 10.6`` trend line is reproduced directly);
* offset/delay buffers — block RAM bits (or registers when small);
* per-design elaboration adds stream-control logic, pipeline balancing
  registers and a small amount of tool-dependent "noise" so that the cost
  model's estimates differ from the synthesiser's "actual" numbers by a few
  per cent, as in Table II.

All randomness is deterministic (hashed from device, opcode and width), so
calibration and accuracy experiments are exactly reproducible.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field, replace

from repro.ir.instructions import OPCODES
from repro.ir.types import ScalarType, TypeKind
from repro.substrate.fpga_device import FPGADevice

__all__ = [
    "ResourceUsage",
    "NetlistOperator",
    "DesignNetlist",
    "CalibrationPoint",
    "CalibrationDataset",
    "SyntheticSynthesizer",
]


# ----------------------------------------------------------------------
# Resource usage record
# ----------------------------------------------------------------------


@dataclass
class ResourceUsage:
    """Utilisation of the four fabric resources tracked by the cost model."""

    alut: float = 0.0
    reg: float = 0.0
    bram_bits: float = 0.0
    dsp: float = 0.0

    RESOURCES = ("alut", "reg", "bram_bits", "dsp")

    def __add__(self, other: "ResourceUsage") -> "ResourceUsage":
        return ResourceUsage(
            alut=self.alut + other.alut,
            reg=self.reg + other.reg,
            bram_bits=self.bram_bits + other.bram_bits,
            dsp=self.dsp + other.dsp,
        )

    def __iadd__(self, other: "ResourceUsage") -> "ResourceUsage":
        self.alut += other.alut
        self.reg += other.reg
        self.bram_bits += other.bram_bits
        self.dsp += other.dsp
        return self

    def scaled(self, factor: float) -> "ResourceUsage":
        return ResourceUsage(
            alut=self.alut * factor,
            reg=self.reg * factor,
            bram_bits=self.bram_bits * factor,
            dsp=self.dsp * factor,
        )

    def rounded(self) -> "ResourceUsage":
        return ResourceUsage(
            alut=round(self.alut),
            reg=round(self.reg),
            bram_bits=round(self.bram_bits),
            dsp=round(self.dsp),
        )

    def as_dict(self) -> dict[str, float]:
        return {name: getattr(self, name) for name in self.RESOURCES}

    def utilization(self, device: FPGADevice) -> dict[str, float]:
        """Fractional utilisation of each resource on ``device`` (0..inf)."""
        caps = device.resource_capacities()
        return {
            "alut": self.alut / caps["alut"],
            "reg": self.reg / caps["reg"],
            "bram_bits": self.bram_bits / caps["bram_bits"],
            "dsp": self.dsp / caps["dsp"],
        }

    def fits(self, device: FPGADevice) -> bool:
        return all(frac <= 1.0 for frac in self.utilization(device).values())

    def limiting_resource(self, device: FPGADevice) -> tuple[str, float]:
        """The resource closest to (or beyond) capacity and its utilisation."""
        util = self.utilization(device)
        name = max(util, key=util.get)
        return name, util[name]

    def __str__(self) -> str:
        return (
            f"ALUT={self.alut:.0f} REG={self.reg:.0f} "
            f"BRAM={self.bram_bits:.0f}b DSP={self.dsp:.0f}"
        )


# ----------------------------------------------------------------------
# Netlist view of a design (the structural summary both the compiler and
# the cost model can produce from the IR)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class NetlistOperator:
    """One datapath operator instance in a lane."""

    opcode: str
    type: ScalarType
    constant_operand: bool = False


@dataclass
class DesignNetlist:
    """Structural summary of a design variant handed to the synthesiser.

    ``operators``, ``offset_buffer_bits``, ``input_streams`` and
    ``output_streams`` describe *one* lane; ``lanes`` and ``vectorization``
    describe the replication applied to it.  ``balancing_register_bits``
    carries the pipeline-balancing registers inserted by the scheduler
    (per lane), when known.
    """

    operators: list[NetlistOperator] = field(default_factory=list)
    offset_buffer_bits: list[int] = field(default_factory=list)
    input_streams: int = 0
    output_streams: int = 0
    lanes: int = 1
    vectorization: int = 1
    balancing_register_bits: int = 0
    name: str = "design"

    @property
    def streams(self) -> int:
        return self.input_streams + self.output_streams

    @property
    def replication(self) -> int:
        return self.lanes * self.vectorization


# ----------------------------------------------------------------------
# Calibration data (the "one-time benchmark experiments" of Figure 2)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CalibrationPoint:
    """Synthesis result for a single operator at a single width."""

    opcode: str
    width: int
    constant_operand: bool
    usage: ResourceUsage

    def as_dict(self) -> dict:
        return {
            "opcode": self.opcode,
            "width": self.width,
            "constant_operand": self.constant_operand,
            "usage": self.usage.as_dict(),
        }


@dataclass
class CalibrationDataset:
    """A set of calibration points for one device."""

    device_name: str
    points: list[CalibrationPoint] = field(default_factory=list)

    def add(self, point: CalibrationPoint) -> None:
        self.points.append(point)

    def for_opcode(self, opcode: str, constant_operand: bool = False) -> list[CalibrationPoint]:
        return [
            p
            for p in self.points
            if p.opcode == opcode and p.constant_operand == constant_operand
        ]

    def opcodes(self) -> set[str]:
        return {p.opcode for p in self.points}

    def as_dict(self) -> dict:
        return {
            "device_name": self.device_name,
            "points": [p.as_dict() for p in self.points],
        }

    @staticmethod
    def from_dict(data: dict) -> "CalibrationDataset":
        ds = CalibrationDataset(device_name=data["device_name"])
        for rec in data["points"]:
            ds.add(
                CalibrationPoint(
                    opcode=rec["opcode"],
                    width=int(rec["width"]),
                    constant_operand=bool(rec["constant_operand"]),
                    usage=ResourceUsage(**rec["usage"]),
                )
            )
        return ds

    def __len__(self) -> int:
        return len(self.points)


# ----------------------------------------------------------------------
# The synthesiser
# ----------------------------------------------------------------------

#: Fraction of DSP-eligible multiplies that real tools end up re-mapping to
#: LUT logic for balance/packing reasons — the source of the occasional
#: DSP-count discrepancy seen in Table II (lavaMD: 26 estimated vs 23 actual).
_DSP_REMAP_FRACTION = 0.12

#: Widths below which a variable multiply is cheaper in LUTs than in a DSP.
_LUT_MUL_WIDTH = 10

_FLOAT_BASE_COSTS = {
    # opcode: width -> (alut, reg, bram_bits, dsp)
    "fadd": {32: (760, 900, 0, 0), 64: (1450, 1750, 0, 0), 16: (320, 380, 0, 0)},
    "fsub": {32: (760, 900, 0, 0), 64: (1450, 1750, 0, 0), 16: (320, 380, 0, 0)},
    "fmul": {32: (130, 280, 0, 2), 64: (380, 640, 0, 8), 16: (60, 120, 0, 1)},
    "fdiv": {32: (820, 1500, 0, 0), 64: (3100, 5200, 0, 0), 16: (360, 620, 0, 0)},
    "fsqrt": {32: (510, 950, 0, 0), 64: (1850, 3300, 0, 0), 16: (240, 420, 0, 0)},
    "fexp": {32: (940, 1200, 18_432, 4), 64: (2600, 3400, 36_864, 10), 16: (420, 520, 9_216, 2)},
    "flog": {32: (980, 1250, 18_432, 4), 64: (2700, 3500, 36_864, 10), 16: (440, 540, 9_216, 2)},
    "fcmp": {32: (64, 64, 0, 0), 64: (128, 128, 0, 0), 16: (32, 32, 0, 0)},
}


class SyntheticSynthesizer:
    """Deterministic, first-principles technology mapper for a device.

    Parameters
    ----------
    device:
        The target FPGA.
    noise:
        Relative magnitude of the deterministic per-operator "tool noise"
        applied to ALUT/register/BRAM figures (default 2.5%); models the
        optimisation-dependent variance between an analytic estimate and a
        real synthesis result.
    """

    def __init__(self, device: FPGADevice, noise: float = 0.025):
        self.device = device
        self.noise = noise

    # -- deterministic pseudo-randomness ---------------------------------
    def _hash_unit(self, *key) -> float:
        """A deterministic value in [-1, 1) derived from the key and device."""
        text = "|".join(str(k) for k in (self.device.name, *key))
        digest = hashlib.sha256(text.encode()).digest()
        value = int.from_bytes(digest[:8], "big") / 2**64
        return 2.0 * value - 1.0

    def _perturb(self, value: float, *key) -> float:
        if value == 0:
            return 0.0
        return value * (1.0 + self.noise * self._hash_unit(*key))

    # -- operator technology mapping --------------------------------------
    def _map_integer_operator(
        self, opcode: str, width: int, constant_operand: bool
    ) -> ResourceUsage:
        category = OPCODES[opcode].category
        w = width

        if category == "add":
            return ResourceUsage(alut=w, reg=w)

        if category == "mul":
            if constant_operand:
                # shift-add network; roughly one adder per set bit of the
                # constant, averaged to half the width
                return ResourceUsage(alut=math.ceil(1.5 * w), reg=w)
            if w <= _LUT_MUL_WIDTH:
                return ResourceUsage(alut=math.ceil(w * w / 2), reg=2 * w)
            dsp_w = self.device.dsp_input_width
            tiles = math.ceil(w / dsp_w)
            dsp = math.ceil(tiles * tiles / 2)
            # piece-wise-linear glue logic with discontinuities at tile edges
            alut = (tiles - 1) * dsp_w + math.ceil(0.3 * w)
            return ResourceUsage(alut=alut, reg=2 * w, dsp=dsp)

        if category == "div":
            # non-restoring divider: the paper's quadratic trend line
            alut = max(w, round(w * w + 3.7 * w - 10.6))
            reg = w * (w + 1) // 2
            if opcode == "sdiv":
                alut += 2 * w
                reg += 2 * w
            return ResourceUsage(alut=alut, reg=reg)

        if category == "logic":
            if opcode in ("mov", "trunc", "zext", "sext"):
                return ResourceUsage(reg=w)
            return ResourceUsage(alut=math.ceil(w / 2), reg=w)

        if category == "shift":
            if constant_operand:
                return ResourceUsage(reg=w)  # pure wiring + output register
            stages = max(1, math.ceil(math.log2(max(w, 2))))
            return ResourceUsage(alut=math.ceil(w * stages / 2), reg=w)

        if category == "cmp":
            if opcode in ("min", "max"):
                return ResourceUsage(alut=2 * w, reg=w)
            if opcode == "abs":
                return ResourceUsage(alut=w, reg=w)
            return ResourceUsage(alut=w, reg=max(1, w // 8))

        if category == "select":
            return ResourceUsage(alut=w, reg=w)

        if category == "special":
            # integer sqrt and friends: iterative shift-subtract array
            return ResourceUsage(alut=(w // 2) ** 2 + 10, reg=w * w // 4)

        raise ValueError(f"no integer mapping for opcode {opcode!r}")  # pragma: no cover

    def _map_float_operator(self, opcode: str, width: int) -> ResourceUsage:
        table = _FLOAT_BASE_COSTS.get(opcode)
        if table is None or width not in table:
            # fall back: scale the 32-bit adder cost with width
            scale = width / 32
            return ResourceUsage(alut=760 * scale, reg=900 * scale)
        alut, reg, bram, dsp = table[width]
        return ResourceUsage(alut=alut, reg=reg, bram_bits=bram, dsp=dsp)

    def synthesize_operator(
        self,
        opcode: str,
        ty: ScalarType,
        constant_operand: bool = False,
        *,
        perturb: bool = True,
    ) -> ResourceUsage:
        """Synthesise one operator instance and return its resource usage."""
        if opcode not in OPCODES:
            raise ValueError(f"unknown opcode {opcode!r}")
        if ty.kind is TypeKind.FLOAT or OPCODES[opcode].float_only:
            usage = self._map_float_operator(opcode, ty.width)
        else:
            usage = self._map_integer_operator(opcode, ty.width, constant_operand)
        if not perturb:
            return usage.rounded()
        key = (opcode, ty.width, constant_operand)
        return ResourceUsage(
            alut=round(self._perturb(usage.alut, "alut", *key)),
            reg=round(self._perturb(usage.reg, "reg", *key)),
            bram_bits=round(self._perturb(usage.bram_bits, "bram", *key)),
            dsp=usage.dsp,  # DSP allocation is discrete; handled at design level
        ).rounded()

    # -- buffers and stream control ---------------------------------------
    #: Buffers at or below this many bits are implemented in registers /
    #: ALM-based shift registers rather than block RAM.
    REGISTER_BUFFER_THRESHOLD_BITS = 640

    def synthesize_offset_buffer(self, bits: int) -> ResourceUsage:
        """An offset/delay buffer of the stream controller."""
        if bits <= 0:
            return ResourceUsage()
        if bits <= self.REGISTER_BUFFER_THRESHOLD_BITS:
            return ResourceUsage(alut=math.ceil(bits / 10), reg=bits)
        # block RAM implementation + a small address counter
        return ResourceUsage(alut=24, reg=32, bram_bits=bits)

    def synthesize_stream_control(self, streams: int, element_width: int = 32) -> ResourceUsage:
        """Per-stream address generation and handshake logic."""
        if streams <= 0:
            return ResourceUsage()
        per_stream = ResourceUsage(alut=40 + element_width // 2, reg=48 + element_width)
        return per_stream.scaled(streams)

    # -- whole design elaboration -----------------------------------------
    def synthesize_design(self, netlist: DesignNetlist) -> ResourceUsage:
        """Elaborate a full design variant and return its "actual" utilisation.

        The result differs from the light-weight cost model's estimate by:
        per-operator tool noise, occasional DSP re-mapping, tool glue logic
        (a ~1.5% ALUT adder) and the pipeline balancing registers when the
        netlist carries them.
        """
        lane = ResourceUsage()

        for index, op in enumerate(netlist.operators):
            usage = self.synthesize_operator(op.opcode, op.type, op.constant_operand)
            # occasional tool-driven re-mapping of a DSP multiply to LUTs
            if usage.dsp > 0:
                roll = abs(self._hash_unit("remap", netlist.name, index, op.opcode, op.type.width))
                if roll < _DSP_REMAP_FRACTION:
                    usage = replace(
                        usage,
                        dsp=0,
                        alut=usage.alut + math.ceil(op.type.width * op.type.width / 2),
                    )
            lane += usage

        for bits in netlist.offset_buffer_bits:
            lane += self.synthesize_offset_buffer(bits)

        element_width = max((op.type.width for op in netlist.operators), default=32)
        lane += self.synthesize_stream_control(netlist.streams, element_width)
        lane += ResourceUsage(reg=netlist.balancing_register_bits)

        total = lane.scaled(netlist.replication)
        # tool glue: clock enables, resets, unpacked control sets
        glue = 1.0 + 0.015 + 0.005 * self._hash_unit("glue", netlist.name)
        total = ResourceUsage(
            alut=round(total.alut * glue),
            reg=round(total.reg * (1.0 + 0.01)),
            bram_bits=round(total.bram_bits * (1.0 + 0.003 * abs(self._hash_unit("bramglue", netlist.name)))),
            dsp=round(total.dsp),
        )
        return total

    # -- characterisation (calibration input of Figure 2) ------------------
    DEFAULT_CHARACTERIZATION_WIDTHS = (18, 32, 64)

    def characterize(
        self,
        opcodes: list[str] | None = None,
        widths: list[int] | None = None,
        include_constant_variants: bool = True,
    ) -> CalibrationDataset:
        """Run the one-time benchmark experiments for this device.

        Mirrors the paper's procedure of synthesising a few widths per
        primitive (three data points — 18, 32 and 64 bits — for the integer
        divider of Figure 9) and recording the resources used.
        """
        opcodes = opcodes or ["add", "sub", "mul", "div", "and", "or", "xor",
                              "shl", "icmp", "select", "min", "max"]
        widths = list(widths or self.DEFAULT_CHARACTERIZATION_WIDTHS)
        dataset = CalibrationDataset(device_name=self.device.name)
        for opcode in opcodes:
            for width in widths:
                ty = ScalarType.uint(width)
                dataset.add(
                    CalibrationPoint(
                        opcode=opcode,
                        width=width,
                        constant_operand=False,
                        usage=self.synthesize_operator(opcode, ty),
                    )
                )
                if include_constant_variants and OPCODES[opcode].category in ("mul", "shift"):
                    dataset.add(
                        CalibrationPoint(
                            opcode=opcode,
                            width=width,
                            constant_operand=True,
                            usage=self.synthesize_operator(opcode, ty, constant_operand=True),
                        )
                    )
        return dataset
