"""FPGA device and board descriptions.

A :class:`FPGADevice` captures the architecture-description inputs the cost
model needs (peak bandwidths, resource capacities, clock) — the "one-time
input for each unique FPGA target" of the paper's Figure 2 — together with
the parameters the synthetic synthesiser uses for technology mapping.

Two real boards from the paper are described:

* ``MAIA_STRATIX_V_GSD8`` — the Maxeler Maia DFE used in the case study
  (Altera Stratix-V GSD8, 695K logic elements, PCIe gen2 x8 host link);
* ``VIRTEX7_ADM_PCIE_7V3`` — the Alpha-Data ADM-PCIE-7V3 used for the
  sustained-bandwidth experiments of Figure 10.

plus ``SMALL_EDU_DEVICE``, a deliberately small device used by the
variant-sweep experiment so that the computation wall of Figure 15 appears
at single-digit lane counts (documented substitution; the paper's own
figure shows percentages of an unspecified reference budget).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.models.memory import MemoryHierarchy

__all__ = [
    "FPGADevice",
    "MAIA_STRATIX_V_GSD8",
    "VIRTEX7_ADM_PCIE_7V3",
    "SMALL_EDU_DEVICE",
    "DEVICES",
    "get_device",
]


@dataclass(frozen=True)
class FPGADevice:
    """Capacities and nominal figures of an FPGA accelerator board.

    Attributes
    ----------
    name / family / vendor:
        Identification; ``family`` selects technology-mapping parameters in
        the synthetic synthesiser.
    aluts / registers / bram_bits / dsps:
        Fabric resource capacities.  ``aluts`` are adaptive LUTs (Altera) or
        LUT6 equivalents (Xilinx).
    dsp_input_width:
        Native multiplier input width of a DSP block (18 for Stratix-V /
        Virtex-7 style 18x18 partial products).
    fmax_mhz:
        Typical achievable kernel clock for streaming pipelines (``FD``).
    dram_bytes / dram_peak_gbps:
        On-board DRAM capacity and peak bandwidth (``GPB``).
    host_peak_gbps:
        Peak host-device bandwidth over PCIe (``HPB``).
    pcie_lanes / pcie_gen:
        Host link configuration (used by the PCIe simulator).
    bram_block_bits:
        Size of one physical block RAM (M20K = 20 kbit, BRAM36 = 36 kbit);
        buffer allocations are rounded up to whole blocks by the
        synthesiser but *not* by the light-weight cost model.
    """

    name: str
    family: str
    vendor: str
    aluts: int
    registers: int
    bram_bits: int
    dsps: int
    dsp_input_width: int = 18
    fmax_mhz: float = 200.0
    dram_bytes: int = 8 << 30
    dram_peak_gbps: float = 9.6
    host_peak_gbps: float = 4.0
    pcie_lanes: int = 8
    pcie_gen: int = 2
    bram_block_bits: int = 20_480
    #: extra metadata (board name, notes)
    info: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        for attr in ("aluts", "registers", "bram_bits", "dsps"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")

    # -- derived views ----------------------------------------------------
    def memory_hierarchy(self) -> MemoryHierarchy:
        """The device's memory hierarchy in terms of the §III-2 model."""
        return MemoryHierarchy.generic(
            dram_bytes=self.dram_bytes,
            bram_bytes=self.bram_bits // 8,
            register_bytes=self.registers // 8,
            dram_peak_gbps=self.dram_peak_gbps,
            bram_peak_gbps=self.fmax_mhz * 1e6 * (self.bram_bits // self.bram_block_bits) * 4 / 1e9,
            host_link_peak_gbps=self.host_peak_gbps,
        )

    def resource_capacities(self) -> dict[str, int]:
        """Capacities keyed by the resource names used throughout the repo."""
        return {
            "alut": self.aluts,
            "reg": self.registers,
            "bram_bits": self.bram_bits,
            "dsp": self.dsps,
        }

    @property
    def clock_hz(self) -> float:
        return self.fmax_mhz * 1e6


#: Maxeler Maia DFE (case study of §VII): Altera Stratix-V GSD8.
#: 695K logic elements ~= 262K ALMs ~= 524K ALUTs; 1963 DSP blocks;
#: 50 Mbit of M20K block RAM; 48 GB on-board DRAM; PCIe gen2 x8.
MAIA_STRATIX_V_GSD8 = FPGADevice(
    name="maia-stratix-v-gsd8",
    family="stratix-v",
    vendor="altera",
    aluts=524_000,
    registers=1_048_000,
    bram_bits=52_428_800,
    dsps=1963,
    dsp_input_width=18,
    fmax_mhz=200.0,
    dram_bytes=48 << 30,
    dram_peak_gbps=38.4,
    host_peak_gbps=4.0,
    pcie_lanes=8,
    pcie_gen=2,
    bram_block_bits=20_480,
    info={"board": "Maxeler Maia DFE", "logic_elements": 695_000},
)

#: Alpha-Data ADM-PCIE-7V3 (Figure 10 experiments): Xilinx Virtex-7 690T.
VIRTEX7_ADM_PCIE_7V3 = FPGADevice(
    name="adm-pcie-7v3-virtex7",
    family="virtex-7",
    vendor="xilinx",
    aluts=433_200,
    registers=866_400,
    bram_bits=52_920_000,
    dsps=3600,
    dsp_input_width=18,
    fmax_mhz=250.0,
    dram_bytes=16 << 30,
    dram_peak_gbps=21.3,
    host_peak_gbps=7.9,
    pcie_lanes=8,
    pcie_gen=3,
    bram_block_bits=36_864,
    info={"board": "Alpha-Data ADM-PCIE-7V3"},
)

#: A deliberately small device used for wall/feasibility studies
#: (the Figure 15 sweep), so that resource walls appear at single-digit
#: lane counts as in the paper's illustration.
SMALL_EDU_DEVICE = FPGADevice(
    name="small-edu-device",
    family="stratix-v",
    vendor="altera",
    aluts=4_000,
    registers=8_000,
    bram_bits=1_000_000,
    dsps=32,
    dsp_input_width=18,
    fmax_mhz=150.0,
    dram_bytes=2 << 30,
    dram_peak_gbps=6.4,
    host_peak_gbps=1.6,
    pcie_lanes=4,
    pcie_gen=2,
    bram_block_bits=20_480,
    info={"board": "synthetic small device for wall studies"},
)

DEVICES: dict[str, FPGADevice] = {
    d.name: d
    for d in (MAIA_STRATIX_V_GSD8, VIRTEX7_ADM_PCIE_7V3, SMALL_EDU_DEVICE)
}
# convenient aliases
DEVICES["stratix-v"] = MAIA_STRATIX_V_GSD8
DEVICES["virtex-7"] = VIRTEX7_ADM_PCIE_7V3
DEVICES["small"] = SMALL_EDU_DEVICE


def get_device(name: str) -> FPGADevice:
    """Look a device up by name or alias."""
    try:
        return DEVICES[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown device {name!r}; available: {sorted(DEVICES)}"
        ) from exc
