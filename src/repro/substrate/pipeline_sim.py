"""Cycle-accurate simulator of TyTra streaming pipelines.

The paper validates its throughput estimates against the cycles-per-
kernel-instance measured on the actual FPGA (Table II).  Here the ground
truth comes from simulating the very pipeline the back-end compiler
schedules: offset-buffer priming, pipeline fill, steady-state streaming
(possibly stalled by the memory system) and drain.

Two execution modes are provided:

* an **analytic** mode that computes the cycle count in closed form — fast
  enough to sweep large NDRanges;
* a **cycle-stepping** mode that advances a token-level model one cycle at
  a time — used to cross-validate the analytic mode on small runs (the
  two must agree within one pipeline depth).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.substrate.memory_sim import MemorySystemSimulator

__all__ = ["PipelineSpec", "SimulationResult", "PipelineSimulator"]


@dataclass(frozen=True)
class PipelineSpec:
    """Architectural summary of a compiled compute unit.

    Attributes
    ----------
    name:
        For reporting.
    lanes:
        Number of replicated kernel pipelines (``KNL``).
    vectorization:
        Degree of vectorisation per lane (``DV``).
    pipeline_depth:
        Depth of one lane in cycles (``KPD``).
    instructions:
        Datapath instructions per processing element (``NI``).
    cycles_per_instruction:
        ``NTO``; 1 for a fully pipelined spatial datapath.
    offset_fill_words:
        Words that must be buffered before the first work-item can enter
        the datapath (``Noff`` — the maximum stream offset span).
    input_words_per_item / output_words_per_item:
        Stream words consumed / produced per work-item per lane.
    element_bytes:
        Size of one stream word.
    clock_mhz:
        Kernel clock (``FD``).
    """

    name: str = "pipeline"
    lanes: int = 1
    vectorization: int = 1
    pipeline_depth: int = 1
    instructions: int = 1
    cycles_per_instruction: int = 1
    offset_fill_words: int = 0
    input_words_per_item: int = 1
    output_words_per_item: int = 1
    element_bytes: int = 4
    clock_mhz: float = 200.0

    def __post_init__(self) -> None:
        if self.lanes < 1 or self.vectorization < 1:
            raise ValueError("lanes and vectorization must be >= 1")
        if self.pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")
        if self.cycles_per_instruction < 1:
            raise ValueError("cycles_per_instruction must be >= 1")
        if self.clock_mhz <= 0:
            raise ValueError("clock_mhz must be positive")

    @property
    def words_per_item(self) -> int:
        return self.input_words_per_item + self.output_words_per_item

    @property
    def ideal_items_per_cycle(self) -> float:
        """Work-items retired per cycle with no memory stalls."""
        issue_interval = max(1, self.cycles_per_instruction)
        if issue_interval == 1:
            return float(self.lanes * self.vectorization)
        # time-multiplexed functional units: one item per NI*NTO cycles per lane
        return self.lanes * self.vectorization / (issue_interval * max(1, self.instructions))

    @property
    def clock_hz(self) -> float:
        return self.clock_mhz * 1e6


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of simulating one kernel-instance execution."""

    spec_name: str
    items: int
    cycles: int
    seconds: float
    stall_cycles: int
    fill_cycles: int
    items_per_cycle: float
    cycles_per_item: float
    limited_by: str  # 'compute' or 'memory'

    @property
    def cycles_per_kernel_instance(self) -> int:
        """CPKI — the quantity reported in Table II."""
        return self.cycles

    def as_dict(self) -> dict:
        return {
            "spec": self.spec_name,
            "items": self.items,
            "cycles": self.cycles,
            "seconds": self.seconds,
            "stall_cycles": self.stall_cycles,
            "fill_cycles": self.fill_cycles,
            "items_per_cycle": self.items_per_cycle,
            "cycles_per_item": self.cycles_per_item,
            "limited_by": self.limited_by,
        }


class PipelineSimulator:
    """Simulate kernel-instance executions of a compiled pipeline."""

    def __init__(self, memory: MemorySystemSimulator | None = None):
        self.memory = memory

    # ------------------------------------------------------------------
    def _memory_words_per_cycle(self, spec: PipelineSpec, memory_gbps: float | None) -> float:
        """Stream words the memory system can deliver per kernel cycle."""
        if memory_gbps is None:
            if self.memory is None:
                return math.inf
            memory_gbps = self.memory.dram.effective_peak_gbps
        bytes_per_cycle = memory_gbps * 1e9 / spec.clock_hz
        return bytes_per_cycle / spec.element_bytes

    # ------------------------------------------------------------------
    def run_kernel_instance(
        self,
        spec: PipelineSpec,
        n_items: int,
        memory_gbps: float | None = None,
        *,
        cycle_accurate: bool = False,
    ) -> SimulationResult:
        """Execute one kernel instance of ``n_items`` work-items."""
        if n_items <= 0:
            raise ValueError("n_items must be positive")
        if cycle_accurate:
            return self._run_cycle_accurate(spec, n_items, memory_gbps)
        return self._run_analytic(spec, n_items, memory_gbps)

    # -- analytic mode ----------------------------------------------------
    def _run_analytic(
        self, spec: PipelineSpec, n_items: int, memory_gbps: float | None
    ) -> SimulationResult:
        words_per_cycle = self._memory_words_per_cycle(spec, memory_gbps)

        # 1. prime the offset buffers
        if spec.offset_fill_words > 0:
            fill_rate = min(words_per_cycle, float(spec.lanes * spec.vectorization))
            fill_cycles = math.ceil(spec.offset_fill_words / max(fill_rate, 1e-12))
        else:
            fill_cycles = 0

        # 2. fill the pipeline
        fill_cycles += spec.pipeline_depth

        # 3. steady state: compute rate vs memory rate
        compute_rate = spec.ideal_items_per_cycle
        memory_rate = words_per_cycle / spec.words_per_item if spec.words_per_item else math.inf
        effective_rate = min(compute_rate, memory_rate)
        steady_cycles = math.ceil(n_items / effective_rate)
        ideal_cycles = math.ceil(n_items / compute_rate)

        total = fill_cycles + steady_cycles
        stalls = steady_cycles - ideal_cycles
        seconds = total / spec.clock_hz
        return SimulationResult(
            spec_name=spec.name,
            items=n_items,
            cycles=total,
            seconds=seconds,
            stall_cycles=max(0, stalls),
            fill_cycles=fill_cycles,
            items_per_cycle=n_items / total,
            cycles_per_item=total / n_items,
            limited_by="memory" if memory_rate < compute_rate else "compute",
        )

    # -- cycle-stepping mode ------------------------------------------------
    def _run_cycle_accurate(
        self, spec: PipelineSpec, n_items: int, memory_gbps: float | None
    ) -> SimulationResult:
        words_per_cycle = self._memory_words_per_cycle(spec, memory_gbps)
        issue_interval = (
            1
            if spec.cycles_per_instruction == 1
            else spec.cycles_per_instruction * max(1, spec.instructions)
        )
        lanes = spec.lanes * spec.vectorization

        cycles = 0
        stalls = 0
        word_credit = 0.0
        buffered_words = 0
        issued = 0
        retired = 0
        fill_cycles = 0
        # each in-flight item retires pipeline_depth cycles after issue
        retire_queue: list[int] = []
        offset_target = spec.offset_fill_words
        next_issue_cycle = 0

        # hard safety bound so a mis-configured spec cannot loop forever
        max_cycles = 1000 * (n_items + spec.pipeline_depth + offset_target + 1)

        while retired < n_items and cycles < max_cycles:
            word_credit += words_per_cycle

            # priming phase: fill offset buffers before the first issue
            if buffered_words < offset_target:
                take = min(word_credit, offset_target - buffered_words, float(lanes))
                buffered_words += take
                word_credit -= take
                cycles += 1
                fill_cycles += 1
                continue

            # issue up to `lanes` items this cycle, each consuming its words
            issued_this_cycle = 0
            while (
                issued < n_items
                and issued_this_cycle < lanes
                and cycles >= next_issue_cycle
                and word_credit >= spec.words_per_item
            ):
                word_credit -= spec.words_per_item
                retire_queue.append(cycles + spec.pipeline_depth)
                issued += 1
                issued_this_cycle += 1
            if issue_interval > 1 and issued_this_cycle:
                next_issue_cycle = cycles + issue_interval

            if issued_this_cycle == 0 and issued < n_items and cycles >= next_issue_cycle:
                stalls += 1

            while retire_queue and retire_queue[0] <= cycles:
                retire_queue.pop(0)
                retired += 1

            cycles += 1

        seconds = cycles / spec.clock_hz
        compute_rate = spec.ideal_items_per_cycle
        memory_rate = (
            words_per_cycle / spec.words_per_item if spec.words_per_item else math.inf
        )
        return SimulationResult(
            spec_name=spec.name,
            items=n_items,
            cycles=cycles,
            seconds=seconds,
            stall_cycles=stalls,
            fill_cycles=fill_cycles + spec.pipeline_depth,
            items_per_cycle=n_items / cycles,
            cycles_per_item=cycles / n_items,
            limited_by="memory" if memory_rate < compute_rate else "compute",
        )

    # ------------------------------------------------------------------
    def run_application(
        self,
        spec: PipelineSpec,
        n_items: int,
        repetitions: int,
        memory_gbps: float | None = None,
        per_instance_overhead_s: float = 0.0,
    ) -> tuple[float, SimulationResult]:
        """Run ``repetitions`` kernel instances and return (total seconds, one result)."""
        result = self.run_kernel_instance(spec, n_items, memory_gbps)
        total = repetitions * (result.seconds + per_instance_overhead_s)
        return total, result
