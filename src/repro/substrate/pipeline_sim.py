"""Cycle-accurate simulator of TyTra streaming pipelines.

The paper validates its throughput estimates against the cycles-per-
kernel-instance measured on the actual FPGA (Table II).  Here the ground
truth comes from simulating the very pipeline the back-end compiler
schedules: offset-buffer priming, pipeline fill, steady-state streaming
(possibly stalled by the memory system) and drain.

Two execution modes are provided:

* an **analytic** mode that computes the cycle count in closed form — fast
  enough to sweep large NDRanges;
* a **cycle-stepping** mode that advances a token-level model one cycle at
  a time — used to cross-validate the analytic mode on small runs.

The two modes share one accounting scheme so they can be compared
directly (see :mod:`repro.validate`):

* ``fill_cycles`` is the offset-buffer priming time plus the pipeline
  depth in both modes;
* ``stall_cycles`` is the time beyond the no-stall baseline in both
  modes: ``cycles - fill_cycles - ceil(items / ideal_items_per_cycle)``;
* the cycle counts agree within one pipeline depth plus one issue
  interval (a single cycle for the fully pipelined datapaths the
  compiler schedules, ``cycles_per_instruction * instructions`` for a
  time-multiplexed spec, whose bursty issue quantises the drain) plus a
  few cycles of phase-boundary rounding
  (:data:`CYCLE_AGREEMENT_SLACK`) — a property test enforces this
  across lanes x offsets x memory rates x issue intervals, and the
  cross-validation gate holds the six golden kernels to the strict
  one-pipeline-depth bound.

Offset priming may be driven at a different memory rate than the steady
state (``fill_memory_gbps``): the EKIT cost model charges the offset fill
at the sustained DRAM bandwidth in *every* memory-execution form, even
form C where the steady state streams from on-chip memory.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.substrate.memory_sim import MemorySystemSimulator

__all__ = [
    "CYCLE_AGREEMENT_SLACK",
    "PipelineSpec",
    "SimulationResult",
    "SimulationDivergedError",
    "PipelineSimulator",
]

#: cycles of phase-boundary rounding the two modes may legitimately differ
#: by on top of one pipeline depth (priming/steady/drain each round once)
CYCLE_AGREEMENT_SLACK = 4


class SimulationDivergedError(RuntimeError):
    """The cycle-stepping simulation exceeded its safety bound.

    The bound is a generous multiple of the analytic-mode expectation, so
    tripping it means the token-level model made no forward progress the
    closed form predicts — a simulator bug or a mis-configured spec, never
    a legitimate result.  The partially-stepped state is attached for
    diagnosis instead of being returned as a silently-truncated (wrong)
    cycle count.
    """

    def __init__(self, spec_name: str, cycles: int, retired: int, n_items: int):
        super().__init__(
            f"cycle-stepping simulation of {spec_name!r} diverged: "
            f"{retired}/{n_items} items retired after {cycles} cycles"
        )
        self.spec_name = spec_name
        self.cycles = cycles
        self.retired = retired
        self.n_items = n_items


@dataclass(frozen=True)
class PipelineSpec:
    """Architectural summary of a compiled compute unit.

    Attributes
    ----------
    name:
        For reporting.
    lanes:
        Number of replicated kernel pipelines (``KNL``).
    vectorization:
        Degree of vectorisation per lane (``DV``).
    pipeline_depth:
        Depth of one lane in cycles (``KPD``).
    instructions:
        Datapath instructions per processing element (``NI``).
    cycles_per_instruction:
        ``NTO``; 1 for a fully pipelined spatial datapath.
    offset_fill_words:
        Words that must be buffered before the first work-item can enter
        the datapath (``Noff`` — the maximum stream offset span).
    input_words_per_item / output_words_per_item:
        Stream words consumed / produced per work-item per lane.
    element_bytes:
        Size of one stream word.
    clock_mhz:
        Kernel clock (``FD``).
    """

    name: str = "pipeline"
    lanes: int = 1
    vectorization: int = 1
    pipeline_depth: int = 1
    instructions: int = 1
    cycles_per_instruction: int = 1
    offset_fill_words: int = 0
    input_words_per_item: int = 1
    output_words_per_item: int = 1
    element_bytes: int = 4
    clock_mhz: float = 200.0

    def __post_init__(self) -> None:
        if self.lanes < 1 or self.vectorization < 1:
            raise ValueError("lanes and vectorization must be >= 1")
        if self.pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")
        if self.cycles_per_instruction < 1:
            raise ValueError("cycles_per_instruction must be >= 1")
        if self.clock_mhz <= 0:
            raise ValueError("clock_mhz must be positive")

    @property
    def words_per_item(self) -> int:
        return self.input_words_per_item + self.output_words_per_item

    @property
    def issue_interval_cycles(self) -> int:
        """Cycles between issue events: 1 for a fully pipelined datapath,
        ``NI * NTO`` when functional units are time-multiplexed."""
        if self.cycles_per_instruction == 1:
            return 1
        return self.cycles_per_instruction * max(1, self.instructions)

    @property
    def cycle_agreement_bound(self) -> int:
        """One pipeline depth plus one issue interval: the documented
        bound within which independent executions of this spec (the
        analytic mode, the cycle-stepping mode, and — via
        :mod:`repro.flows` — the RTL simulation of the generated
        datapath) must agree on a kernel instance's cycle count."""
        return self.pipeline_depth + self.issue_interval_cycles

    @property
    def ideal_items_per_cycle(self) -> float:
        """Work-items retired per cycle with no memory stalls."""
        if self.issue_interval_cycles == 1:
            return float(self.lanes * self.vectorization)
        # time-multiplexed functional units: one item per NI*NTO cycles per lane
        return self.lanes * self.vectorization / self.issue_interval_cycles

    @property
    def clock_hz(self) -> float:
        return self.clock_mhz * 1e6


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of simulating one kernel-instance execution."""

    spec_name: str
    items: int
    cycles: int
    seconds: float
    stall_cycles: int
    fill_cycles: int
    items_per_cycle: float
    cycles_per_item: float
    limited_by: str  # 'compute' or 'memory'

    @property
    def cycles_per_kernel_instance(self) -> int:
        """CPKI — the quantity reported in Table II."""
        return self.cycles

    def as_dict(self) -> dict:
        return {
            "spec": self.spec_name,
            "items": self.items,
            "cycles": self.cycles,
            "seconds": self.seconds,
            "stall_cycles": self.stall_cycles,
            "fill_cycles": self.fill_cycles,
            "items_per_cycle": self.items_per_cycle,
            "cycles_per_item": self.cycles_per_item,
            "limited_by": self.limited_by,
        }


class PipelineSimulator:
    """Simulate kernel-instance executions of a compiled pipeline."""

    def __init__(self, memory: MemorySystemSimulator | None = None):
        self.memory = memory

    # ------------------------------------------------------------------
    def _memory_words_per_cycle(self, spec: PipelineSpec, memory_gbps: float | None) -> float:
        """Stream words the memory system can deliver per kernel cycle."""
        if memory_gbps is None:
            if self.memory is None:
                return math.inf
            memory_gbps = self.memory.dram.effective_peak_gbps
        bytes_per_cycle = memory_gbps * 1e9 / spec.clock_hz
        return bytes_per_cycle / spec.element_bytes

    # ------------------------------------------------------------------
    def run_kernel_instance(
        self,
        spec: PipelineSpec,
        n_items: int,
        memory_gbps: float | None = None,
        *,
        fill_memory_gbps: float | None = None,
        cycle_accurate: bool = False,
        max_cycles: int | None = None,
    ) -> SimulationResult:
        """Execute one kernel instance of ``n_items`` work-items.

        ``memory_gbps`` bounds the steady-state stream rate (``math.inf``
        for data resident on chip); ``fill_memory_gbps`` bounds the
        offset-buffer priming rate separately and defaults to the
        steady-state rate.  ``max_cycles`` overrides the cycle-stepping
        safety bound (for tests); when the bound trips, the stepping mode
        raises :class:`SimulationDivergedError` instead of returning a
        truncated cycle count.
        """
        if n_items <= 0:
            raise ValueError("n_items must be positive")
        for name, value in (("memory_gbps", memory_gbps),
                            ("fill_memory_gbps", fill_memory_gbps)):
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if cycle_accurate:
            return self._run_cycle_accurate(spec, n_items, memory_gbps,
                                            fill_memory_gbps, max_cycles)
        return self._run_analytic(spec, n_items, memory_gbps, fill_memory_gbps)

    # -- analytic mode ----------------------------------------------------
    def _run_analytic(
        self,
        spec: PipelineSpec,
        n_items: int,
        memory_gbps: float | None,
        fill_memory_gbps: float | None = None,
    ) -> SimulationResult:
        words_per_cycle = self._memory_words_per_cycle(spec, memory_gbps)
        fill_words_per_cycle = (
            words_per_cycle
            if fill_memory_gbps is None
            else self._memory_words_per_cycle(spec, fill_memory_gbps)
        )

        # 1. prime the offset buffers (ingest capped at one word per lane)
        if spec.offset_fill_words > 0:
            fill_rate = min(fill_words_per_cycle, float(spec.lanes * spec.vectorization))
            fill_cycles = math.ceil(spec.offset_fill_words / max(fill_rate, 1e-12))
        else:
            fill_cycles = 0

        # 2. fill the pipeline
        fill_cycles += spec.pipeline_depth

        # 3. steady state: compute rate vs memory rate
        compute_rate = spec.ideal_items_per_cycle
        memory_rate = words_per_cycle / spec.words_per_item if spec.words_per_item else math.inf
        effective_rate = min(compute_rate, memory_rate)
        steady_cycles = math.ceil(n_items / effective_rate)
        ideal_cycles = math.ceil(n_items / compute_rate)

        total = fill_cycles + steady_cycles
        # stall accounting shared with the stepping mode: cycles beyond the
        # no-stall baseline of fill + ideal steady state
        stalls = total - fill_cycles - ideal_cycles
        seconds = total / spec.clock_hz
        return SimulationResult(
            spec_name=spec.name,
            items=n_items,
            cycles=total,
            seconds=seconds,
            stall_cycles=max(0, stalls),
            fill_cycles=fill_cycles,
            items_per_cycle=n_items / total,
            cycles_per_item=total / n_items,
            limited_by="memory" if memory_rate < compute_rate else "compute",
        )

    # -- cycle-stepping mode ------------------------------------------------
    def _run_cycle_accurate(
        self,
        spec: PipelineSpec,
        n_items: int,
        memory_gbps: float | None,
        fill_memory_gbps: float | None = None,
        max_cycles: int | None = None,
    ) -> SimulationResult:
        words_per_cycle = self._memory_words_per_cycle(spec, memory_gbps)
        fill_words_per_cycle = (
            words_per_cycle
            if fill_memory_gbps is None
            else self._memory_words_per_cycle(spec, fill_memory_gbps)
        )
        issue_interval = spec.issue_interval_cycles
        lanes = spec.lanes * spec.vectorization
        # the stream FIFO between the memory interface and the ingest ports
        # holds one issue interval's worth of consumption plus one issue
        # interval's worth of delivery headroom: an unbounded credit bank
        # would let the memory run arbitrarily far ahead of the pipeline,
        # while a smaller FIFO would drop deliveries that arrive while a
        # (bursty, time-multiplexed) consumer sits between issue events —
        # either breaks the agreement with the analytic mode
        consume_per_event = float(max(lanes * spec.words_per_item, lanes))
        fill_credit_cap = lanes + min(fill_words_per_cycle, float(lanes))
        steady_credit_cap = consume_per_event + min(
            words_per_cycle * issue_interval, consume_per_event
        )

        if max_cycles is None:
            # safety bound: a generous multiple of the analytic expectation,
            # so it can only trip on genuine non-progress (never on a slow
            # but well-formed configuration)
            expected = self._run_analytic(spec, n_items, memory_gbps, fill_memory_gbps)
            max_cycles = 10 * expected.cycles + 1000

        cycles = 0
        word_credit = 0.0
        buffered_words = 0.0
        issued = 0
        retired = 0
        fill_cycles = 0
        # each in-flight item retires pipeline_depth cycles after issue
        retire_queue: deque[int] = deque()
        offset_target = spec.offset_fill_words
        next_issue_cycle = 0
        priming = buffered_words < offset_target

        while retired < n_items:
            if cycles >= max_cycles:
                raise SimulationDivergedError(spec.name, cycles, retired, n_items)

            # priming phase: fill offset buffers before the first issue
            # (ingest capped at one word per lane, as in the analytic mode)
            if priming:
                word_credit = min(word_credit + fill_words_per_cycle, fill_credit_cap)
                take = min(word_credit, offset_target - buffered_words, float(lanes))
                buffered_words += take
                word_credit -= take
                cycles += 1
                fill_cycles += 1
                if buffered_words >= offset_target:
                    # the prefetcher does not run ahead of priming: leftover
                    # credit is discarded at the phase boundary
                    priming = False
                    word_credit = 0.0
                continue

            word_credit = min(word_credit + words_per_cycle, steady_credit_cap)

            # issue up to `lanes` items this cycle, each consuming its words
            issued_this_cycle = 0
            while (
                issued < n_items
                and issued_this_cycle < lanes
                and cycles >= next_issue_cycle
                and word_credit >= spec.words_per_item
            ):
                word_credit -= spec.words_per_item
                retire_queue.append(cycles + spec.pipeline_depth)
                issued += 1
                issued_this_cycle += 1
            if issue_interval > 1 and issued_this_cycle:
                next_issue_cycle = cycles + issue_interval

            while retire_queue and retire_queue[0] <= cycles:
                retire_queue.popleft()
                retired += 1

            cycles += 1

        seconds = cycles / spec.clock_hz
        compute_rate = spec.ideal_items_per_cycle
        memory_rate = (
            words_per_cycle / spec.words_per_item if spec.words_per_item else math.inf
        )
        # fill/stall accounting shared with the analytic mode
        fill_total = fill_cycles + spec.pipeline_depth
        stalls = cycles - fill_total - math.ceil(n_items / compute_rate)
        return SimulationResult(
            spec_name=spec.name,
            items=n_items,
            cycles=cycles,
            seconds=seconds,
            stall_cycles=max(0, stalls),
            fill_cycles=fill_total,
            items_per_cycle=n_items / cycles,
            cycles_per_item=cycles / n_items,
            limited_by="memory" if memory_rate < compute_rate else "compute",
        )

    # ------------------------------------------------------------------
    def run_application(
        self,
        spec: PipelineSpec,
        n_items: int,
        repetitions: int,
        memory_gbps: float | None = None,
        per_instance_overhead_s: float = 0.0,
        *,
        fill_memory_gbps: float | None = None,
        cycle_accurate: bool = False,
    ) -> tuple[float, SimulationResult]:
        """Run ``repetitions`` kernel instances and return (total seconds, one result)."""
        result = self.run_kernel_instance(
            spec,
            n_items,
            memory_gbps,
            fill_memory_gbps=fill_memory_gbps,
            cycle_accurate=cycle_accurate,
        )
        total = repetitions * (result.seconds + per_instance_overhead_s)
        return total, result
