"""CPU baseline execution model.

The case study of §VII compares FPGA solutions against a Fortran CPU
implementation compiled with ``gcc -O2`` on a 1.6 GHz Intel i7.  The
reproduction replaces those measured runtimes with a roofline-style CPU
execution model: per kernel iteration the runtime is the larger of the
compute time (operations at an effective scalar issue rate) and the memory
time (bytes at the sustainable memory bandwidth, once the working set
spills out of the last-level cache).

The absolute figures are representative of the machine the paper used;
Figures 17 and 18 are normalised against this baseline so only relative
shapes matter, but the crossovers (FPGA slower at tiny grids, much faster
at large ones) emerge from the same mechanism as on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CPUModel", "CPURunEstimate"]


@dataclass(frozen=True)
class CPURunEstimate:
    """Runtime breakdown for a CPU execution."""

    seconds: float
    compute_seconds: float
    memory_seconds: float
    per_iteration_overhead_seconds: float

    @property
    def bound(self) -> str:
        return "compute" if self.compute_seconds >= self.memory_seconds else "memory"


@dataclass
class CPUModel:
    """Single-socket CPU execution model (gcc -O2 style scalar code).

    Attributes
    ----------
    frequency_ghz:
        Core clock.  The paper's host is an Intel i7 at 1.6 GHz.
    ops_per_cycle:
        Sustained arithmetic operations per cycle for compiled scalar
        stencil code (includes the effect of loop overhead, address
        arithmetic and stalls).
    memory_bandwidth_gbps:
        Sustainable DRAM bandwidth from a single core.
    llc_bytes:
        Last-level cache size; working sets below this run from cache and
        do not pay the DRAM bandwidth cost.
    cache_bandwidth_gbps:
        Bandwidth when the working set is cache resident.
    threads:
        Number of worker threads (1 for the paper's baseline).
    per_call_overhead_us:
        Loop/setup overhead per kernel call (per outer iteration).
    """

    name: str = "intel-i7-1.6GHz"
    frequency_ghz: float = 1.6
    ops_per_cycle: float = 1.4
    memory_bandwidth_gbps: float = 10.0
    llc_bytes: int = 8 << 20
    cache_bandwidth_gbps: float = 60.0
    threads: int = 1
    per_call_overhead_us: float = 5.0

    def estimate_iteration(
        self,
        n_items: int,
        ops_per_item: float,
        bytes_per_item: float,
        working_set_bytes: int | None = None,
    ) -> CPURunEstimate:
        """Estimate one kernel call (one pass over the NDRange)."""
        if n_items <= 0:
            raise ValueError("n_items must be positive")
        total_ops = n_items * ops_per_item
        total_bytes = n_items * bytes_per_item
        working_set = working_set_bytes if working_set_bytes is not None else total_bytes

        compute_s = total_ops / (self.frequency_ghz * 1e9 * self.ops_per_cycle * self.threads)
        bandwidth = (
            self.cache_bandwidth_gbps
            if working_set <= self.llc_bytes
            else self.memory_bandwidth_gbps
        )
        memory_s = total_bytes / (bandwidth * 1e9)
        overhead_s = self.per_call_overhead_us * 1e-6
        return CPURunEstimate(
            seconds=max(compute_s, memory_s) + overhead_s,
            compute_seconds=compute_s,
            memory_seconds=memory_s,
            per_iteration_overhead_seconds=overhead_s,
        )

    def estimate_application(
        self,
        n_items: int,
        ops_per_item: float,
        bytes_per_item: float,
        iterations: int,
        working_set_bytes: int | None = None,
    ) -> float:
        """Total seconds for ``iterations`` kernel calls."""
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        one = self.estimate_iteration(n_items, ops_per_item, bytes_per_item, working_set_bytes)
        return iterations * one.seconds
