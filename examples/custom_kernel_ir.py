#!/usr/bin/env python3
"""Writing your own kernel: from .tirl text to cost report and Verilog.

This example shows the lower-level workflow a downstream user would follow
for a kernel that is not in the built-in library:

1. describe the design variant directly in the textual TyTra-IR;
2. parse and validate it;
3. inspect the configuration tree the compiler extracts (Figure 8);
4. cost it and generate the HDL.

Run with:  python examples/custom_kernel_ir.py
"""

from repro.compiler import CompilationOptions, TybecCompiler, build_configuration_tree
from repro.models import KernelInstance, NDRange
from repro.substrate import VIRTEX7_ADM_PCIE_7V3

# A small finite-impulse-response style kernel with two thread-parallel
# lanes: each lane computes y = c0*x + c1*x(+1) + c2*x(+2) and accumulates
# an energy term.
FIR_TIRL = """
module "fir_2lane"
const TAPS = 3

; **** MANAGE-IR ****
%mobj_x = memobj addrSpace(1) ui24, !size, !65536, !"x"
%mobj_y = memobj addrSpace(1) ui24, !size, !65536, !"y"
%strobj_x0 = streamobj %mobj_x, !"istream", !"CONT", !stride, !1
%strobj_x1 = streamobj %mobj_x, !"istream", !"CONT", !stride, !1
%strobj_y0 = streamobj %mobj_y, !"ostream", !"CONT", !stride, !1
%strobj_y1 = streamobj %mobj_y, !"ostream", !"CONT", !stride, !1

; **** COMPUTE-IR ****
@fir.x = addrSpace(1) ui24, !"istream", !"CONT", !0, !"strobj_x0"
@fir.y = addrSpace(1) ui24, !"ostream", !"CONT", !0, !"strobj_y0"

define void @fir (ui24 %x) pipe {
  ui24 %xp1 = ui24 %x, !offset, !+1
  ui24 %xp2 = ui24 %x, !offset, !+2
  ui24 %t0 = mul ui24 %x, 37
  ui24 %t1 = mul ui24 %xp1, 111
  ui24 %t2 = mul ui24 %xp2, 61
  ui24 %s0 = add ui24 %t0, %t1
  ui24 %y = add ui24 %s0, %t2
  ui24 @energy = add ui24 %y, @energy
}

define void @lanes (ui24 %x) par {
  call @fir(%x) pipe
  call @fir(%x) pipe
}

define void @main () {
  call @lanes(%x) par
}
"""


def main() -> None:
    compiler = TybecCompiler(CompilationOptions(device=VIRTEX7_ADM_PCIE_7V3))

    module = compiler.parse(FIR_TIRL, name="fir_2lane")
    print("configuration tree extracted from the IR:")
    print(build_configuration_tree(module).to_text())

    workload = KernelInstance("fir", NDRange((65536,)), repetitions=200)
    report = compiler.cost(module, workload)
    print()
    print(report.to_text())

    files = compiler.emit_hdl(module)
    print()
    print("generated HDL / integration files:")
    for name, body in sorted(files.items()):
        first_line = body.splitlines()[0] if body else ""
        print(f"  {name:<28} ({len(body.splitlines())} lines)  {first_line}")


if __name__ == "__main__":
    main()
