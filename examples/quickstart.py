#!/usr/bin/env python3
"""Quickstart: cost a TyTra-IR design variant in well under a second.

This walks the paper's Figure-2 use-case end to end:

1. build (or parse) a design variant in TyTra-IR — here the SOR kernel
   from the LES weather model, as a single kernel pipeline;
2. hand it to the TyBEC compiler together with a workload description
   (the NDRange and the number of kernel-instance repetitions);
3. read off the resource, bandwidth and throughput (EKIT) estimates and
   the performance-limiting factor.

Run with:  python examples/quickstart.py
"""

from repro.compiler import CompilationOptions, TybecCompiler
from repro.ir import print_module
from repro.kernels import SORKernel
from repro.substrate import MAIA_STRATIX_V_GSD8


def main() -> None:
    kernel = SORKernel()
    grid = (24, 24, 24)

    # -- 1. the design variant, generated from the functional description ----
    module = kernel.build_module(lanes=1, grid=grid)
    print("TyTra-IR for the single-pipeline SOR variant")
    print("=" * 72)
    print(print_module(module))

    # -- 2. cost it ------------------------------------------------------------
    compiler = TybecCompiler(CompilationOptions(device=MAIA_STRATIX_V_GSD8))
    workload = kernel.workload(grid, iterations=1000)
    report = compiler.cost(module, workload)

    # -- 3. the estimates --------------------------------------------------------
    print()
    print(report.to_text())

    # the same IR can be turned into synthesizeable HDL plus the MaxJ/host glue
    files = compiler.emit_hdl(module)
    print()
    print("generated files:", ", ".join(sorted(files)))


if __name__ == "__main__":
    main()
