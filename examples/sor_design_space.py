#!/usr/bin/env python3
"""Design-space exploration of the SOR kernel (the Figure-15 experiment).

Starting from the baseline functional program, the ``reshapeTo`` type
transformation generates variants with 1..16 parallel kernel lanes.  Each
variant is lowered to TyTra-IR and costed; the script prints the resource
utilisation and throughput (EWGT) per lane count, and reports where the
communication and computation walls appear.

Run with:  python examples/sor_design_space.py [--device small|stratix-v]
"""

import argparse

from repro.compiler import CompilationOptions, TybecCompiler
from repro.explore import (
    DesignSpace,
    ExplorationEngine,
    ProcessPoolBackend,
    SerialBackend,
    exhaustive_search,
    generate_lane_variants,
    roofline_analysis,
)
from repro.kernels import SORKernel
from repro.substrate import get_device


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--device", default="small",
                        help="FPGA target (the small device makes the walls visible)")
    parser.add_argument("--grid", type=int, default=16, help="grid elements per dimension")
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument("--max-lanes", type=int, default=16)
    parser.add_argument("--jobs", type=int, default=None,
                        help="run the multi-axis sweep on N worker processes")
    args = parser.parse_args()

    kernel = SORKernel()
    device = get_device(args.device)
    grid = (args.grid, args.grid, args.grid)
    compiler = TybecCompiler(CompilationOptions(device=device))

    variants = generate_lane_variants(kernel, grid=grid, iterations=args.iterations,
                                      max_lanes=args.max_lanes)
    result = exhaustive_search(compiler, variants)

    print(f"SOR variant sweep on {device.name} (grid {grid}, {args.iterations} iterations)")
    header = (f"{'lanes':>5} {'EWGT/s':>12} {'ALUT%':>7} {'REG%':>7} {'BRAM%':>7} "
              f"{'DSP%':>6} {'limiting factor':>18} {'fits':>5}")
    print(header)
    print("-" * len(header))
    for row in result.summary_rows():
        print(f"{row['lanes']:>5} {row['ewgt_per_s']:>12.1f} {row['alut_pct']:>7.2f} "
              f"{row['reg_pct']:>7.2f} {row['bram_pct']:>7.2f} {row['dsp_pct']:>6.2f} "
              f"{row['limiting_factor']:>18} {'yes' if row['feasible'] else 'NO':>5}")

    walls = [row["lanes"] for row in result.summary_rows() if not row["feasible"]]
    if walls:
        print(f"\ncomputation wall: the design no longer fits beyond {walls[0] - 1} lane(s)")
    print(f"best feasible variant: {result.best_lanes} lane(s)")
    print(f"total estimation time for {result.evaluated} variants: "
          f"{result.estimation_seconds:.3f} s")

    print("\nroofline view (operations per byte vs attainable GOP/s):")
    for point in roofline_analysis(result.reports, ops_per_item=kernel.ops_per_item):
        print(f"  {point.lanes:>2} lanes: OI={point.operational_intensity:5.2f} op/B  "
              f"attainable={point.attainable_gops:7.3f} GOP/s  "
              f"(compute roof {point.compute_roof_gops:7.3f}, "
              f"bandwidth roof {point.bandwidth_roof_gops:7.3f}, {point.bound}-bound)")

    # ---- multi-axis exploration: lanes x clock frequency --------------------
    space = DesignSpace(
        kernel=kernel,
        grid=grid,
        iterations=args.iterations,
        max_lanes=args.max_lanes,
        clocks_mhz=(100.0, 150.0, 200.0),
        devices=(device,),
    )
    backend = (
        ProcessPoolBackend(max_workers=args.jobs)
        if args.jobs and args.jobs > 1
        else SerialBackend()
    )
    engine = ExplorationEngine(backend)
    sweep = engine.explore(space)
    print(f"\nmulti-axis sweep: {len(space)} points over axes {space.active_axes} "
          f"({sweep.variants_per_second:.1f} variants/s)")
    for entry in sweep.pareto_frontier():
        report = entry.report
        print(f"  pareto: {entry.point.label}  EKIT {report.ekit:.1f}/s, "
              f"worst utilisation "
              f"{report.feasibility.limiting_resource_utilization * 100:.1f}%")
    best = sweep.best()
    if best is not None:
        print(f"best feasible point overall: {best.point.label}")


if __name__ == "__main__":
    main()
