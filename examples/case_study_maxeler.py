#!/usr/bin/env python3
"""The §VII case study: TyTra-generated SOR vs a commercial HLS flow vs CPU.

Reproduces Figures 17 and 18: runtime and increase-over-idle energy of the
SOR kernel for grid sizes 24..192 per dimension (1000 iterations), for the
CPU baseline, a single-pipeline MaxJ-style HLS implementation, and the
four-lane TyTra-generated variant, all normalised against the CPU.

Run with:  python examples/case_study_maxeler.py
"""

from repro.explore import CaseStudyConfig, run_sor_case_study


def main() -> None:
    config = CaseStudyConfig(iterations=1000, lanes=4)
    points = run_sor_case_study(grid_sides=(24, 48, 96, 144, 192), config=config)

    print("Runtime of the SOR kernel, normalised against the CPU-only solution")
    print("(1000 kernel iterations; lower is better)")
    print(f"{'grid':>6} {'cpu':>8} {'fpga-maxJ':>10} {'fpga-tytra':>11} "
          f"{'tytra vs cpu':>13} {'tytra vs maxJ':>14}")
    for p in points:
        norm = p.runtime_normalised
        print(f"{p.grid_side:>6} {norm['cpu']:>8.2f} {norm['fpga-maxJ']:>10.2f} "
              f"{norm['fpga-tytra']:>11.2f} {p.tytra_speedup_vs_cpu:>12.2f}x "
              f"{p.tytra_speedup_vs_maxj:>13.2f}x")

    print()
    print("Increase over idle energy, normalised against the CPU-only solution")
    print(f"{'grid':>6} {'cpu':>8} {'fpga-maxJ':>10} {'fpga-tytra':>11} "
          f"{'tytra gain vs cpu':>18} {'vs maxJ':>9}")
    for p in points:
        norm = p.energy_normalised
        print(f"{p.grid_side:>6} {norm['cpu']:>8.2f} {norm['fpga-maxJ']:>10.2f} "
              f"{norm['fpga-tytra']:>11.2f} {p.tytra_energy_gain_vs_cpu:>17.2f}x "
              f"{p.tytra_energy_gain_vs_maxj:>8.2f}x")

    big = points[-1]
    print()
    print(f"at {big.grid_side}^3 the TyTra-selected variant is "
          f"{big.tytra_speedup_vs_maxj:.1f}x faster than the straightforward HLS port, "
          f"{big.tytra_speedup_vs_cpu:.1f}x faster than the CPU, and "
          f"{big.tytra_energy_gain_vs_cpu:.1f}x more energy-efficient than the CPU.")


if __name__ == "__main__":
    main()
