"""Experiment E8 — Figure 8: configuration extracted from the IR hierarchy.

Figure 8 shows the configuration tree the compiler builds for a typical
design: a coarse-grained pipeline in which one of the peer kernels uses a
custom combinatorial (``comb``) function.  This benchmark constructs that
design (plus the paper's Figure-14 style data-parallel variant), measures
how quickly the analysis runs, and regenerates the tree rendering.
"""

import pytest

from repro.compiler import build_configuration_tree, classify_module
from repro.ir import IRBuilder, ScalarType
from repro.kernels import SORKernel
from repro.models import ConfigurationClass

from .conftest import format_table

UI18 = ScalarType.uint(18)


def build_figure8_module():
    """A coarse-grained pipeline whose second peer uses a comb block."""
    b = IRBuilder("fig8_coarse_pipeline")
    comb = b.function("combA", kind="comb", args=[(UI18, "x")])
    comb.instr("xor", UI18, comb.arg("x"), 0xFF)
    pipe_a = b.function("pipeA", kind="pipe", args=[(UI18, "x")])
    pipe_a.mul(UI18, pipe_a.arg("x"), 3)
    pipe_a.add(UI18, "1", 7)
    pipe_b = b.function("pipeB", kind="pipe", args=[(UI18, "x")])
    pipe_b.add(UI18, pipe_b.arg("x"), 1)
    pipe_b.call("combA", ["x"], kind="comb")
    top = b.function("f0", kind="pipe", args=[(UI18, "x")])
    top.call("pipeA", ["x"], kind="pipe")
    top.call("pipeB", ["x"], kind="pipe")
    main = b.function("main", kind="none")
    main.call("f0", ["x"], kind="pipe")
    return b.build()


def test_fig08_configuration_tree(benchmark, write_result):
    module = build_figure8_module()
    tree = benchmark(build_configuration_tree, module)

    text = tree.to_text()
    write_result("fig08_configuration_tree", text)

    # the tree mirrors the paper's figure: a pipe root with two pipe peers,
    # one of which owns a comb leaf
    assert tree.root.function == "main"
    assert tree.depth() == 4
    assert tree.count("pipe") == 3
    assert tree.count("comb") == 1
    assert [leaf.function for leaf in tree.leaves()] == ["pipeA", "combA"]
    assert "@combA [comb]" in text
    assert "@pipeB [pipe]" in text

    classification = classify_module(module)
    assert classification.configuration_class is ConfigurationClass.C2
    assert classification.lanes == 1


def test_fig08_lane_replicated_tree(benchmark, write_result):
    """The Figure-14 counterpart: four thread-parallel SOR lanes."""
    module = SORKernel().build_module(lanes=4, grid=(24, 24, 24))
    tree = benchmark(build_configuration_tree, module)

    write_result("fig08_sor_4lane_tree", tree.to_text())
    assert tree.lanes() == 4
    assert tree.count("par") == 1
    assert tree.count("pipe") == 4
    assert classify_module(module).configuration_class is ConfigurationClass.C1

    rows = [[kind, tree.count(kind)] for kind in ("pipe", "par", "seq", "comb")]
    write_result(
        "fig08_sor_4lane_counts",
        format_table(["function kind", "instances"], rows,
                     title="Configuration summary of the 4-lane SOR variant"),
    )
