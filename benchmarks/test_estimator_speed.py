"""Experiment E7 — estimator speed (paper §VI-A).

The paper stresses that the estimator is very fast: the (Perl) prototype
takes about 0.3 s to evaluate one variant, more than 200x faster than the
preliminary estimates of a commercial HLS flow (close to 70 s for
SDAccel), and the gap is expected to widen for larger designs.

The benchmark measures the Python reproduction's per-variant estimation
time (excluding the one-time per-device calibration, exactly as the paper
does) and compares it against the documented HLS estimation-latency model.
"""

import json

import pytest

from repro.explore import DesignSpace, ExplorationEngine, build_jobs
from repro.kernels import SORKernel
from repro.substrate import BaselineHLSFlow, MAIA_STRATIX_V_GSD8

from .conftest import format_table

GRID = (24, 24, 24)
LANES = 4
PAPER_TYTRA_SECONDS = 0.3
PAPER_HLS_SECONDS = 70.0


@pytest.fixture(scope="module")
def variant(maia_compiler):
    kernel = SORKernel()
    module = kernel.build_module(lanes=LANES, grid=GRID)
    workload = kernel.workload(GRID, iterations=1000)
    # warm the one-time per-device inputs so the measurement is per-variant
    maia_compiler.cost(module, workload)
    return module, workload


def test_estimator_speed_vs_hls(benchmark, maia_compiler, variant, write_result):
    module, workload = variant
    report = benchmark(maia_compiler.cost, module, workload)

    per_variant_seconds = benchmark.stats.stats.mean
    hls_seconds = BaselineHLSFlow(MAIA_STRATIX_V_GSD8).estimate_report_time(
        report.resources.structure.instructions_per_pe
    )
    speedup_vs_hls = hls_seconds / per_variant_seconds

    write_result(
        "estimator_speed",
        format_table(
            ["estimator", "seconds per variant", "speedup vs HLS estimate"],
            [
                ["this reproduction (Python)", round(per_variant_seconds, 4),
                 f"{speedup_vs_hls:.0f}x"],
                ["paper's prototype (Perl)", PAPER_TYTRA_SECONDS,
                 f"{PAPER_HLS_SECONDS / PAPER_TYTRA_SECONDS:.0f}x"],
                ["commercial HLS preliminary estimate (modelled)", round(hls_seconds, 1), "1x"],
            ],
            title="Estimator speed: one SOR variant (4 lanes, 24^3 grid)",
        ),
    )

    # comfortably inside the paper's 0.3 s envelope, and far beyond its 200x claim
    assert per_variant_seconds < PAPER_TYTRA_SECONDS
    assert speedup_vs_hls > 200
    assert report.ekit > 0


def test_estimation_time_scales_gently_with_design_size(maia_compiler, write_result):
    """Costing stays sub-second even for much wider variants."""
    kernel = SORKernel()
    rows = []
    for lanes in (1, 4, 16):
        module = kernel.build_module(lanes=lanes, grid=GRID)
        report = maia_compiler.cost(module, kernel.workload(GRID, 1000))
        rows.append([lanes, round(report.estimation_seconds * 1e3, 2)])
        assert report.estimation_seconds < PAPER_TYTRA_SECONDS
    write_result(
        "estimator_speed_scaling",
        format_table(["lanes", "estimation time (ms)"], rows,
                     title="Estimation time vs variant width"),
    )


def test_explore_engine_throughput(maia_compiler, results_dir):
    """Record the exploration engine's variants/sec in BENCH_explore.json.

    A multi-axis sweep (lanes x clock) runs twice through one engine: the
    first pass pays for analysis and resource estimation, the repeat pass
    exercises the memoizing pipeline.  The recorded figures are the CI
    throughput artifact for the scaling roadmap.
    """
    space = DesignSpace(
        kernel=SORKernel(),
        grid=GRID,
        iterations=10,
        max_lanes=16,
        clocks_mhz=(100.0, 150.0, 200.0, 250.0),
    )
    engine = ExplorationEngine()
    jobs = build_jobs(space)
    first = engine.cost_many(jobs)
    repeat = engine.cost_many(jobs)

    payload = {
        "kernel": "sor",
        "grid": list(GRID),
        "axes": space.axis_sizes(),
        "points": len(space),
        "first_pass": {
            "wall_seconds": first.wall_seconds,
            "variants_per_second": first.variants_per_second,
            "stage_seconds": first.stats.get("stage_seconds", {}),
            "family_hits_misses": first.stats.get("family"),
        },
        "memoized_pass": {
            "wall_seconds": repeat.wall_seconds,
            "variants_per_second": repeat.variants_per_second,
            "stage_seconds": repeat.stats.get("stage_seconds", {}),
        },
        "memoization_speedup": (
            first.wall_seconds / repeat.wall_seconds if repeat.wall_seconds > 0 else None
        ),
    }
    (results_dir / "BENCH_explore.json").write_text(json.dumps(payload, indent=2) + "\n")

    assert first.evaluated == repeat.evaluated == len(space) >= 20
    # the engine clears the paper's per-variant envelope with huge headroom
    assert first.variants_per_second > 1.0 / PAPER_TYTRA_SECONDS
    assert repeat.wall_seconds < first.wall_seconds
    # lane scaling carried the lane axis: one full analysis for the family
    hits, misses = first.stats["family"]
    assert misses <= 1 and hits >= 1


def test_per_stage_breakdown_names_the_guilty_stage(results_dir, write_result):
    """Per-stage wall-time split of one cold multi-axis sweep.

    When estimator speed regresses, this table (and the same data inside
    ``BENCH_explore.json``/``BENCH_suite.json``) says *which* stage —
    parse, analyze, resource, throughput, feasibility or calibrate — ate
    the time, instead of a single opaque number.
    """
    from repro.compiler.pipeline import clear_calibration_cache

    clear_calibration_cache()  # a cold sweep exercises every stage
    space = DesignSpace(
        kernel=SORKernel(), grid=GRID, iterations=10,
        max_lanes=16, clocks_mhz=(150.0, 250.0),
    )
    sweep = ExplorationEngine().cost_many(build_jobs(space))

    rows = [[row["stage"], round(row["seconds"] * 1e3, 3),
             f"{row['share'] * 100:.1f}%"]
            for row in sweep.stage_timing_rows()]
    write_result(
        "estimator_stage_breakdown",
        format_table(["stage", "wall (ms)", "share"], rows,
                     title=f"Stage breakdown of a cold {sweep.evaluated}-point sweep"),
    )

    stages = {row[0] for row in rows}
    assert {"analyze", "resource", "throughput", "feasibility", "calibrate"} <= stages
    # every stage is accounted for and none dominates pathologically
    assert all(seconds >= 0 for _, seconds, _ in rows)
    assert sum(seconds for _, seconds, _ in rows) > 0
