"""Workload-suite throughput benchmark -> BENCH_suite.json.

Times the six-kernel workload suite end to end — the "cost every scenario
we have" batch the golden harness and future speed PRs will lean on — and
records per-kernel and total throughput figures as a CI artifact.  Like
``BENCH_explore.json``, the artifact is how a performance PR proves (or a
regression reveals) a change in batch-costing speed.
"""

from __future__ import annotations

import json

from repro.kernels import kernel_names
from repro.suite import SuiteConfig, WorkloadSuite

#: the paper's per-variant estimation envelope (~0.3 s/variant)
PAPER_TYTRA_SECONDS = 0.3


def test_suite_throughput_artifact(results_dir):
    """Run the tiny suite twice (cold-ish, memoized) and record throughput."""
    suite = WorkloadSuite(SuiteConfig.tiny())
    first = suite.run()
    repeat = suite.run()

    per_kernel = {
        name: {
            "points": info["points"],
            "feasible_points": info["feasible_points"],
            "grid": info["workload"]["grid"],
        }
        for name, info in first.report.kernels.items()
    }
    payload = {
        "kernels": kernel_names(),
        "points": first.evaluated,
        "per_kernel": per_kernel,
        "first_pass": {
            "wall_seconds": first.wall_seconds,
            "variants_per_second": first.variants_per_second,
        },
        "memoized_pass": {
            "wall_seconds": repeat.wall_seconds,
            "variants_per_second": repeat.variants_per_second,
        },
        "report_bytes": len(first.report.to_json()),
    }
    (results_dir / "BENCH_suite.json").write_text(json.dumps(payload, indent=2) + "\n")

    assert sorted(first.report.kernels) == kernel_names()
    assert first.evaluated == repeat.evaluated >= len(kernel_names())
    # batch costing clears the paper's per-variant envelope with headroom
    assert first.variants_per_second > 1.0 / PAPER_TYTRA_SECONDS
    # determinism across the two passes (the suite's core guarantee)
    assert first.report.to_json() == repeat.report.to_json()


def test_suite_batch_benchmark(benchmark):
    """pytest-benchmark timing of one full tiny-suite batch."""
    suite = WorkloadSuite(SuiteConfig.tiny())
    suite.run()   # warm the calibration and memoization caches

    result = benchmark(lambda: suite.run().evaluated)
    assert result >= len(kernel_names())
