"""Workload-suite throughput benchmark -> BENCH_suite.json.

Times the six-kernel workload suite end to end — the "cost every scenario
we have" batch the golden harness and future speed PRs lean on — and
records the performance trajectory of the estimation hot path as a CI
artifact:

* **baseline** — the full O(points) path (lane scaling and persistence
  disabled): every lane count of every kernel pays parse → analyze →
  schedule → estimate.  This is what the sweep loop cost before the
  lane-scaling PR (the in-tree baseline also carries this PR's shared
  optimisations, so the recorded speedups *understate* the gain over the
  previous commit).
* **cold** — lane scaling on, persistent store empty: one full analysis
  per design family, every other lane count derived analytically.
* **warm** — a cold in-process cache against the now-populated store:
  what any new process (CI rerun, pool worker, next CLI call) pays.

All three scenarios must produce byte-identical canonical reports — that
equality, together with the golden files, is what licenses the shortcut.
"""

from __future__ import annotations

import json
import shutil

import pytest

from repro.compiler.pipeline import clear_calibration_cache
from repro.kernels import kernel_names
from repro.suite import SuiteConfig, WorkloadSuite

#: the paper's per-variant estimation envelope (~0.3 s/variant)
PAPER_TYTRA_SECONDS = 0.3

#: the acceptance grid: every kernel on its full 24^3-class grid with the
#: complete lane axis up to 64 and a clock axis — the lane-heavy sweep
#: shape of Figure 15, where O(families) beats O(points) hardest
FULL_GRID_CONFIG = SuiteConfig(
    max_lanes=64,
    clocks_mhz=(150.0, 200.0, 250.0),
    iterations=10,
    grids={k: (24, 24, 24) for k in
           ("sor", "hotspot", "lavamd", "nw", "matmul", "conv2d")},
)

#: conservative in-tree gates (the recorded ratios run higher; see
#: BENCH_suite.json and the warm-vs-cold CI job for the 3x/5x evidence)
MIN_COLD_SPEEDUP = 2.0
MIN_WARM_SPEEDUP = 3.0


def _run_best_of(config, monkeypatch, *, scaling, cache_dir, repeats=2,
                 fresh_dir=False):
    monkeypatch.setenv("TYBEC_LANE_SCALING", "1" if scaling else "0")
    monkeypatch.setenv("TYBEC_CACHE_DIR", cache_dir)
    best = None
    for _ in range(repeats):
        clear_calibration_cache()
        if fresh_dir and cache_dir not in ("off", ""):
            shutil.rmtree(cache_dir, ignore_errors=True)
        run = WorkloadSuite(config).run()
        if best is None or run.wall_seconds < best.wall_seconds:
            best = run
    return best


def _scenario_payload(run) -> dict:
    stats = run.stats or {}
    return {
        "wall_seconds": run.wall_seconds,
        "variants_per_second": run.variants_per_second,
        "stage_seconds": stats.get("stage_seconds", {}),
        "family_hits_misses": stats.get("family"),
        "disk_hits_misses": stats.get("disk"),
    }


def test_lane_scaling_before_after_artifact(results_dir, tmp_path, monkeypatch):
    """Record the O(points) -> O(families) before/after in BENCH_suite.json."""
    cache_dir = str(tmp_path / "bench-cache")
    baseline = _run_best_of(FULL_GRID_CONFIG, monkeypatch,
                            scaling=False, cache_dir="off")
    cold = _run_best_of(FULL_GRID_CONFIG, monkeypatch,
                        scaling=True, cache_dir=cache_dir, fresh_dir=True)
    warm = _run_best_of(FULL_GRID_CONFIG, monkeypatch,
                        scaling=True, cache_dir=cache_dir)
    clear_calibration_cache()

    # the shortcut's license: all three paths report identically, byte for byte
    assert baseline.report.to_json() == cold.report.to_json() == warm.report.to_json()

    cold_speedup = baseline.wall_seconds / cold.wall_seconds
    warm_speedup = baseline.wall_seconds / warm.wall_seconds

    payload = {
        "kernels": kernel_names(),
        "full_grid": {
            "points": baseline.evaluated,
            "config": FULL_GRID_CONFIG.as_dict(),
            "baseline_full_path": _scenario_payload(baseline),
            "lane_scaling_cold": _scenario_payload(cold),
            "lane_scaling_warm": _scenario_payload(warm),
            "cold_speedup": cold_speedup,
            "warm_speedup": warm_speedup,
            "reports_identical": True,
        },
        "report_bytes": len(baseline.report.to_json()),
    }
    (results_dir / "BENCH_suite.json").write_text(json.dumps(payload, indent=2) + "\n")

    assert baseline.evaluated == cold.evaluated == warm.evaluated >= 300
    # batch costing clears the paper's per-variant envelope with headroom
    assert cold.variants_per_second > 1.0 / PAPER_TYTRA_SECONDS
    # O(families) must beat O(points) — recorded ratios live in the artifact
    assert cold_speedup >= MIN_COLD_SPEEDUP, payload["full_grid"]
    assert warm_speedup >= MIN_WARM_SPEEDUP, payload["full_grid"]
    # lane scaling actually carried the batch: one analysis per family
    hits, misses = cold.stats["family"]
    assert misses == len(kernel_names())
    assert hits >= baseline.evaluated / 2


def test_suite_report_determinism():
    """Two identical suite runs emit byte-identical canonical reports."""
    suite = WorkloadSuite(SuiteConfig.tiny())
    first = suite.run()
    repeat = suite.run()
    assert sorted(first.report.kernels) == kernel_names()
    assert first.report.to_json() == repeat.report.to_json()


def test_suite_batch_benchmark(benchmark):
    """pytest-benchmark timing of one full tiny-suite batch."""
    suite = WorkloadSuite(SuiteConfig.tiny())
    suite.run()   # warm the calibration and memoization caches

    result = benchmark(lambda: suite.run().evaluated)
    assert result >= len(kernel_names())


def test_stage_timings_are_reported():
    """The suite surfaces per-stage wall time and cache hit rates."""
    run = WorkloadSuite(SuiteConfig.tiny()).run()
    assert run.stats
    seconds = run.stats["stage_seconds"]
    assert {"calibrate", "throughput", "feasibility"} <= set(seconds)
    assert all(v >= 0 for v in seconds.values())
    rows = run.sweep.stage_timing_rows()
    assert rows == sorted(rows, key=lambda r: -r["seconds"])
    assert pytest.approx(sum(r["share"] for r in rows), abs=1e-6) == 1.0