"""Experiment E4 — Table II: estimated vs actual resources and cycles.

The paper validates the cost model on the integer versions of three HPC
kernels — Hotspot and LavaMD from Rodinia and the LES SOR kernel — by
comparing the estimates against the post-synthesis utilisation and the
measured cycles-per-kernel-instance.  Reported errors range from 0% to 13%
(most below ~7%).

Here the "actual" columns come from the synthetic synthesiser and the
cycle-accurate pipeline simulator (the documented substitutions for
Quartus/Vivado and the FPGA run); the benchmark regenerates the full table
and asserts that every error stays in the paper's band.
"""

import pytest

from repro.kernels import get_kernel

from .conftest import format_table

#: workloads used for the accuracy study (compute-bound, like the paper's)
KERNEL_GRIDS = {
    "hotspot": (64, 64),
    "lavamd": (16, 16, 16),
    "sor": (24, 24, 24),
}
#: kernel-instance repetitions; the paper's kernels are compute bound, so the
#: (amortised) host-transfer contribution to CPKI is negligible
ITERATIONS = 1000

#: acceptable relative errors (the paper's worst case is 13%, on a DSP count)
MAX_RELATIVE_ERROR = {
    "alut": 0.10,
    "reg": 0.12,
    "bram_bits": 0.05,
    "cpki": 0.20,
}
MAX_DSP_ABS_ERROR = 4


def _evaluate_kernel(compiler, name):
    kernel = get_kernel(name)
    grid = KERNEL_GRIDS[name]
    module = kernel.build_module(lanes=1, grid=grid)
    workload = kernel.workload(grid, ITERATIONS)
    report = compiler.cost(module, workload)
    variant = compiler.analyze(module)
    actual_resources = compiler.synthesize_actual(variant)
    actual_run = compiler.simulate_actual(variant, workload)
    return report, actual_resources, actual_run


def _error(estimated: float, actual: float) -> float:
    if actual == 0:
        return 0.0 if estimated == 0 else float("inf")
    return abs(estimated - actual) / actual


@pytest.mark.parametrize("kernel_name", sorted(KERNEL_GRIDS))
def test_table2_per_kernel_accuracy(benchmark, maia_compiler, kernel_name):
    report, actual_resources, actual_run = benchmark.pedantic(
        _evaluate_kernel, args=(maia_compiler, kernel_name), rounds=1, iterations=1
    )

    est = report.usage
    est_cpki = report.throughput.cycles_per_kernel_instance
    act_cpki = actual_run.cycles_per_kernel_instance

    assert _error(est.alut, actual_resources.alut) <= MAX_RELATIVE_ERROR["alut"]
    assert _error(est.reg, actual_resources.reg) <= MAX_RELATIVE_ERROR["reg"]
    if actual_resources.bram_bits > 0:
        assert _error(est.bram_bits, actual_resources.bram_bits) <= MAX_RELATIVE_ERROR["bram_bits"]
    else:
        assert est.bram_bits == 0
    assert abs(est.dsp - actual_resources.dsp) <= MAX_DSP_ABS_ERROR
    assert _error(est_cpki, act_cpki) <= MAX_RELATIVE_ERROR["cpki"]


def test_table2_full_table(benchmark, maia_compiler, write_result):
    """Regenerate the whole of Table II and record it for EXPERIMENTS.md."""
    evaluations = benchmark.pedantic(
        lambda: {name: _evaluate_kernel(maia_compiler, name)
                 for name in ("hotspot", "lavamd", "sor")},
        rounds=1, iterations=1,
    )
    rows = []
    worst_error = 0.0
    for name in ("hotspot", "lavamd", "sor"):
        report, actual_resources, actual_run = evaluations[name]
        est = report.usage
        est_cpki = report.throughput.cycles_per_kernel_instance
        act_cpki = actual_run.cycles_per_kernel_instance
        for label, e, a in [
            ("ALUT", est.alut, actual_resources.alut),
            ("REG", est.reg, actual_resources.reg),
            ("BRAM(bits)", est.bram_bits, actual_resources.bram_bits),
            ("DSP", est.dsp, actual_resources.dsp),
            ("CPKI", est_cpki, actual_run.cycles_per_kernel_instance),
        ]:
            err = _error(e, a)
            if a > 0:
                worst_error = max(worst_error, err)
            rows.append([name, label, round(e, 1), round(float(a), 1),
                         f"{err * 100:.2f}%" if a else "n/a"])
        _ = act_cpki
    write_result(
        "table2_estimated_vs_actual",
        format_table(
            ["kernel", "quantity", "estimated", "actual", "error"],
            rows,
            title="Table II: estimated vs actual utilisation and cycles-per-kernel-instance",
        ),
    )
    # the paper's worst error is 13%; allow a little slack for the simulated tools
    assert worst_error <= 0.20
