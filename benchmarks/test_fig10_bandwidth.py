"""Experiment E2 — Figure 10: sustained bandwidth vs size and contiguity.

The paper extends the STREAM benchmark to OpenCL/SDAccel and measures the
sustained bandwidth of device streams on an ADM-PCIE-7V3 board: contiguous
access rises from 0.3 GB/s at 100x100 elements to a ~6.3 GB/s plateau
beyond roughly 1000x1000, while strided access stays around 0.04-0.07 GB/s
— up to two orders of magnitude below — largely independent of the stride.

The benchmark reruns that suite on the transaction-level memory simulator,
fits the empirical bandwidth model the compiler uses, and checks the three
observations that drive the cost model: the monotone rise and plateau of
the contiguous series, the flat and low strided series, and the ~2 orders
of magnitude contiguity gap.
"""

import pytest

from repro.cost import SustainedBandwidthModel
from repro.models.streaming import PatternKind
from repro.substrate import MemorySystemSimulator

from .conftest import format_table

SIDES = (100, 500, 750, 1000, 1500, 2000, 2500, 3000, 3500, 4000, 5000, 6000)


@pytest.fixture(scope="module")
def simulator():
    # the paper's measurements are "baseline figures ... without using any
    # vendor-recommended optimizations": the default single-channel DDR3
    # configuration behind an unoptimised interface
    return MemorySystemSimulator()


def _run_suite(simulator):
    return simulator.run_stream_suite(sides=SIDES)


def test_fig10_stream_suite(benchmark, simulator, write_result):
    measurements = benchmark(_run_suite, simulator)

    contiguous = {m.elements: m.sustained_gbps for m in measurements
                  if m.pattern is PatternKind.CONTIGUOUS}
    strided = {m.elements: m.sustained_gbps for m in measurements
               if m.pattern is PatternKind.STRIDED}

    rows = []
    for side in SIDES:
        n = side * side
        rows.append([side, round(contiguous[n], 3), round(strided[n], 3),
                     round(contiguous[n] / strided[n], 1)])
    write_result(
        "fig10_sustained_bandwidth",
        format_table(
            ["side (elements)", "contiguous GB/s", "strided GB/s", "ratio"],
            rows,
            title="Figure 10: sustained bandwidth vs array size and access pattern",
        ),
    )

    series = [contiguous[s * s] for s in SIDES]
    # rises monotonically and starts around 0.3 GB/s
    assert all(b >= a * 0.99 for a, b in zip(series, series[1:]))
    assert series[0] == pytest.approx(0.3, abs=0.1)
    # plateaus around 6.3 GB/s beyond ~1000x1000
    assert series[-1] == pytest.approx(6.3, rel=0.1)
    plateau_idx = SIDES.index(1000)
    assert series[-1] / series[plateau_idx] < 1.35
    # strided stays low and roughly flat
    strided_series = [strided[s * s] for s in SIDES]
    assert all(0.02 < v < 0.12 for v in strided_series)
    assert max(strided_series) / min(strided_series) < 3
    # the contiguity gap approaches two orders of magnitude at large sizes
    assert series[-1] / strided_series[-1] > 60


def test_fig10_fitted_model_tracks_measurements(benchmark, simulator, write_result):
    """The empirical model the compiler uses interpolates the measurements."""
    model = benchmark(SustainedBandwidthModel.from_simulator, simulator, SIDES)

    rows = []
    for side in (800, 1200, 2600, 4500):
        nbytes = side * side * 4
        direct = simulator.stream_benchmark(side, 4, PatternKind.CONTIGUOUS).sustained_gbps
        fitted = model.sustained_gbps(nbytes)
        rows.append([side, round(direct, 3), round(fitted, 3),
                     f"{abs(direct - fitted) / direct * 100:.1f}%"])
        # interpolation between measured sizes stays within ~25% even in the
        # knee of the curve (and within a few % on the plateau)
        assert fitted == pytest.approx(direct, rel=0.25)
    write_result(
        "fig10_model_interpolation",
        format_table(
            ["side", "measured GB/s", "model GB/s", "error"],
            rows,
            title="Figure 10: fitted empirical model vs fresh measurements at unseen sizes",
        ),
    )

    # the rho factors the EKIT expressions consume
    assert 0.0 < model.rho(100 * 100 * 4) < 0.1
    assert model.rho(6000 * 6000 * 4) == pytest.approx(6.3 / model.peak_gbps, rel=0.15)
    assert model.rho(4000 * 4000 * 4, PatternKind.STRIDED) < 0.02


def test_fig10_paper_reference_table(benchmark, write_result):
    """The paper's own Figure-10 points, usable as a drop-in bandwidth model."""
    model = benchmark(SustainedBandwidthModel.paper_figure10)
    rows = [
        [side, cont, strided]
        for side, cont, strided in zip(
            model.PAPER_FIG10_SIDES,
            model.PAPER_FIG10_CONTIGUOUS_GBPS,
            model.PAPER_FIG10_STRIDED_GBPS,
        )
    ]
    write_result(
        "fig10_paper_reference",
        format_table(["side", "contiguous GB/s", "strided GB/s"], rows,
                     title="Figure 10 as reported in the paper (reference values)"),
    )
    assert model.sustained_gbps(1000 * 1000 * 4) == pytest.approx(2.4, abs=0.2)
