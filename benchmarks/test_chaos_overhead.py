"""Fault-injection instrumentation overhead -> BENCH_chaos.json.

The resilience layer threads ``maybe_fail`` probes through the hot
paths — disk-cache reads/writes, engine batch evaluation, tool launches,
service handlers.  Those probes must be free when no chaos is running:
this benchmark times the full-grid warm sweep twice, once with no fault
plan (the production fast path: one ``dict`` lookup per probe) and once
with an *active all-sites zero-rate plan* (the worst instrumented case:
every probe takes the plan lock and advances a counter without ever
injecting), and gates the difference at <5%.

Both runs must also produce byte-identical canonical reports — an
armed-but-silent plan may cost nanoseconds, never bytes.
"""

from __future__ import annotations

import json

from repro.compiler.pipeline import clear_calibration_cache
from repro.resilience import COUNTERS, FaultPlan
from repro.suite import WorkloadSuite

from benchmarks.test_suite_throughput import FULL_GRID_CONFIG

#: the gate: an armed-but-silent fault plan may slow the warm full-grid
#: sweep by at most this factor (plus a small absolute slack for CI
#: timer noise on sub-second sweeps)
MAX_OVERHEAD_RATIO = 1.05
ABSOLUTE_SLACK_SECONDS = 0.1

#: every instrumented site, armed at rate 0.0 — the probe does all its
#: bookkeeping (lock, counter, schedule draw short-circuit) and never fires
ZERO_RATE_SITES = {site: 0.0 for site in
                   ("cache.read", "cache.write", "worker", "tool",
                    "service.handler")}


def _best_of(runner, repeats: int = 3):
    best = None
    for _ in range(repeats):
        clear_calibration_cache()
        run = runner()
        if best is None or run.wall_seconds < best.wall_seconds:
            best = run
    return best


def test_zero_rate_plan_overhead_is_negligible(results_dir, monkeypatch,
                                               tmp_path):
    """Record the armed-vs-unarmed warm-sweep delta in BENCH_chaos.json."""
    monkeypatch.setenv("TYBEC_CACHE_DIR", str(tmp_path / "chaos-bench-cache"))
    suite = WorkloadSuite(FULL_GRID_CONFIG)
    _best_of(suite.run, repeats=1)   # populate the persistent store

    clean = _best_of(suite.run)
    plan = FaultPlan(dict(ZERO_RATE_SITES), seed=0)
    with plan.active():
        armed = _best_of(suite.run)
    clear_calibration_cache()

    # an armed-but-silent plan never changes a byte
    assert armed.report.to_json() == clean.report.to_json()
    # the probes were actually exercised (the timing is non-vacuous) ...
    stats = plan.stats()
    probed = sum(s["calls"] for s in stats["sites"].values())
    assert probed > 0, stats
    # ... and none of them fired
    assert all(s["injected"] == 0 for s in stats["sites"].values()), stats

    overhead = armed.wall_seconds / clean.wall_seconds
    payload = {
        "points": clean.evaluated,
        "config": FULL_GRID_CONFIG.as_dict(),
        "clean_wall_seconds": clean.wall_seconds,
        "armed_wall_seconds": armed.wall_seconds,
        "overhead_ratio": overhead,
        "max_overhead_ratio": MAX_OVERHEAD_RATIO,
        "probe_calls": stats["sites"],
        "reports_identical": True,
        "resilience_counters": COUNTERS.snapshot(),
    }
    (results_dir / "BENCH_chaos.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    assert clean.evaluated >= 300
    assert armed.wall_seconds <= (clean.wall_seconds * MAX_OVERHEAD_RATIO
                                  + ABSOLUTE_SLACK_SECONDS), payload
