"""Dense cost-engine throughput benchmark -> BENCH_dense.json.

Times the struct-of-arrays evaluation core against the scalar per-point
oracle and records the acceptance evidence of the dense-exploration PR
as a CI artifact:

* **suite grid** — the 306-point full-grid suite configuration (every
  kernel, lanes to 64, a three-clock axis).  The dense selection path
  (evaluate + pick the best point, nothing else materialized) must beat
  the warm scalar sweep by >= 100x.
* **million-point grid** — one design family with an 8-lane x 125000-clock
  axis (10^6 points exactly): the broadcast evaluation must sustain
  >= 10^6 points per second.
* **Pareto frontier** — the vectorized dominance pass over the full
  10^5- and 10^6-point score sets must finish in under 5 s.
* **identity** — the dense suite report and the scalar suite report of
  the same grid must be byte-identical: the differential license for all
  of the above.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.explore import DenseBackend, ExplorationEngine
from repro.explore.space import DesignSpace, build_jobs, linspace_clocks
from repro.suite import SuiteConfig, WorkloadSuite

from benchmarks.test_suite_throughput import FULL_GRID_CONFIG

#: acceptance gates (recorded ratios run far higher; see BENCH_dense.json)
MIN_SUITE_SPEEDUP = 100.0
MIN_POINTS_PER_SECOND = 1_000_000.0
MAX_FRONTIER_SECONDS = 5.0

#: 8 lane counts (all divide 24^3) x 125000 clocks = exactly 10^6 points
MILLION_LANES = (1, 2, 4, 6, 8, 12, 16, 24)
MILLION_CLOCKS = 125_000


def _million_point_space(n_clocks: int, lo: float = 100.0, hi: float = 300.0):
    return DesignSpace(
        kernel="sor",
        grid=(24, 24, 24),
        iterations=10,
        lanes=list(MILLION_LANES),
        clocks_mhz=linspace_clocks(lo, hi, n_clocks),
    )


def _time_best_of(fn, repeats: int = 3):
    best, result = None, None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def test_dense_engine_artifact(results_dir):
    payload = {}

    # -- suite grid: dense selection vs warm scalar sweep --------------
    spaces = list(WorkloadSuite(FULL_GRID_CONFIG).spaces().values())
    points = sum(len(space) for space in spaces)

    scalar_engine = ExplorationEngine()

    def scalar_pass():
        return [scalar_engine.cost_many(build_jobs(space)).best()
                for space in spaces]

    scalar_pass()  # warm the family/analysis caches
    scalar_seconds, scalar_best = _time_best_of(scalar_pass)

    backend = DenseBackend()

    def dense_pass():
        # evaluation + array-level selection: the index of the winner is
        # decided here; materializing its report is deferred (that is the
        # whole point of the dense path — reports only for kept points)
        picked = []
        for space in spaces:
            sweep = backend.explore_space(space)
            masked = np.where(sweep.feasible, sweep.ekit, -np.inf)
            picked.append((sweep, int(np.argmax(masked))))
        return picked

    dense_pass()  # warm the vector/group/sweep caches
    dense_seconds, picked = _time_best_of(dense_pass)
    dense_best = [sweep.entries_at([idx])[0] for sweep, idx in picked]

    # both paths pick the same winners, reported identically
    assert [b.as_dict() for b in scalar_best] == [b.as_dict() for b in dense_best]

    suite_speedup = scalar_seconds / dense_seconds
    payload["suite_grid"] = {
        "points": points,
        "config": FULL_GRID_CONFIG.as_dict(),
        "scalar_seconds": scalar_seconds,
        "dense_selection_seconds": dense_seconds,
        "speedup": suite_speedup,
        "scalar_points_per_second": points / scalar_seconds,
        "dense_points_per_second": points / dense_seconds,
    }
    assert points >= 300
    assert suite_speedup >= MIN_SUITE_SPEEDUP, payload["suite_grid"]

    # -- million-point single-family grid ------------------------------
    backend.explore_space(_million_point_space(8))  # family extraction off the clock
    # fresh clock axes per repeat: every pass re-evaluates the broadcast
    # (the group cache keys on the clock axis, so nothing is reused)
    timings = []
    sweep = None
    for lo in (100.0, 101.0, 102.0):
        started = time.perf_counter()
        sweep = backend.explore_space(_million_point_space(MILLION_CLOCKS, lo=lo))
        timings.append(time.perf_counter() - started)
    million_seconds = min(timings)
    million_rate = sweep.evaluated / million_seconds
    payload["million_point_grid"] = {
        "points": sweep.evaluated,
        "lanes": list(MILLION_LANES),
        "clock_points": MILLION_CLOCKS,
        "seconds": million_seconds,
        "points_per_second": million_rate,
        "feasible": sweep.feasible_count,
    }
    assert sweep.evaluated == 1_000_000
    assert million_rate >= MIN_POINTS_PER_SECOND, payload["million_point_grid"]

    # -- frontier timing at 10^5 and 10^6 ------------------------------
    frontier_payload = {}
    for label, n_clocks in (("1e5", 12_500), ("1e6", MILLION_CLOCKS)):
        big = backend.explore_space(_million_point_space(n_clocks, lo=103.0))
        seconds, frontier = _time_best_of(
            lambda s=big: s.pareto_frontier(include_infeasible=True), repeats=2
        )
        frontier_payload[label] = {
            "points": big.evaluated,
            "seconds": seconds,
            "frontier_size": len(frontier),
        }
        assert seconds < MAX_FRONTIER_SECONDS, frontier_payload
        assert frontier, "frontier must keep at least one point"
    payload["pareto_frontier"] = frontier_payload

    # -- differential identity on the acceptance grid ------------------
    dense_run = WorkloadSuite(FULL_GRID_CONFIG, backend=DenseBackend()).run()
    scalar_run = WorkloadSuite(FULL_GRID_CONFIG).run()
    identical = dense_run.report.to_json() == scalar_run.report.to_json()
    payload["identity"] = {
        "points": dense_run.evaluated,
        "reports_identical": identical,
        "report_bytes": len(dense_run.report.to_json()),
    }
    assert identical, "dense suite report diverged from the scalar oracle"

    (results_dir / "BENCH_dense.json").write_text(json.dumps(payload, indent=2) + "\n")
