"""Benchmark harness package.

Making ``benchmarks`` a proper package lets the ``from .conftest import
format_table`` imports of the experiment modules resolve when the suite is
collected from the repository root (``python -m pytest``).
"""
