"""Optimizer-driven DSE efficiency benchmark -> BENCH_dse.json.

Records the acceptance evidence of the incremental-optimizer PR on the
306-point full suite grid (every kernel, lanes to 64, a three-clock
axis):

* **surrogate prune** — the dense broadcast pass scores every point, but
  at most 25% of them may reach the scalar pipeline, and each kernel's
  best point must be exactly the one the exhaustive sweep picks.  The
  differential identity of the dense engine (BENCH_dense.json) is what
  licenses pruning on dense scores.
* **fmax binary search** — bracketing the highest feasible clock per
  design family must need far fewer probes than stepping a dense clock
  axis at the same resolution, and every closed bracket is re-verified:
  the returned clock costs feasible, the bracket's upper edge costs
  infeasible.
"""

from __future__ import annotations

import json
import time

from repro.explore import (
    DenseBackend,
    DesignSpace,
    ExplorationEngine,
    FmaxBinarySearchOptimizer,
    SurrogatePrunedOptimizer,
)
from repro.suite import WorkloadSuite

from benchmarks.test_suite_throughput import FULL_GRID_CONFIG

#: acceptance gate: fraction of grid points the surrogate may cost exactly
MAX_SCALAR_FRACTION = 0.25

#: fmax search setup: bracket the bandwidth-bound forms on the full grid
FMAX_RESOLUTION_MHZ = 2.0
FMAX_LANES = [1, 2]
FMAX_FORMS = ("A", "B")
FMAX_CLOCK_SPAN_MHZ = (25.0, 1600.0)


def test_dse_optimizer_artifact(results_dir):
    payload = {}
    engine = ExplorationEngine()
    spaces = WorkloadSuite(FULL_GRID_CONFIG).spaces()
    total_points = sum(len(space) for space in spaces.values())
    assert total_points >= 300

    # -- exhaustive oracle (also warms the family/analysis caches) -----
    started = time.perf_counter()
    exhaustive_best = {name: engine.explore(space).best()
                       for name, space in spaces.items()}
    exhaustive_seconds = time.perf_counter() - started

    # -- surrogate prune: dense scores gate the scalar pipeline --------
    dense_backend = DenseBackend()
    per_kernel = {}
    scalar_total = 0
    started = time.perf_counter()
    for name, space in spaces.items():
        run = engine.run_optimizer(SurrogatePrunedOptimizer(
            space, keep_fraction=0.1, dense_backend=dense_backend))
        result = run.result
        assert not result["fallback"], f"{name}: dense prune unavailable"
        assert run.best() is not None
        assert run.best().point == exhaustive_best[name].point, \
            f"{name}: surrogate picked a different best point"
        scalar_total += result["scalar_points"]
        per_kernel[name] = {
            "grid_points": result["dense_points"],
            "scalar_points": result["scalar_points"],
            "best": result["best"],
        }
    surrogate_seconds = time.perf_counter() - started

    scalar_fraction = scalar_total / total_points
    payload["surrogate"] = {
        "config": FULL_GRID_CONFIG.as_dict(),
        "grid_points": total_points,
        "scalar_points": scalar_total,
        "scalar_fraction": scalar_fraction,
        "max_scalar_fraction": MAX_SCALAR_FRACTION,
        "exhaustive_seconds": exhaustive_seconds,
        "surrogate_seconds": surrogate_seconds,
        "kernels": per_kernel,
        "best_points_match_exhaustive": True,
    }
    assert scalar_fraction <= MAX_SCALAR_FRACTION, payload["surrogate"]

    # -- fmax binary search: probes vs a stepped clock axis ------------
    fmax_spaces = [DesignSpace(kernel=name, grid=(24, 24, 24), iterations=10,
                               lanes=FMAX_LANES, forms=FMAX_FORMS)
                   for name in sorted(spaces)]
    started = time.perf_counter()
    run = engine.run_optimizer(FmaxBinarySearchOptimizer(
        fmax_spaces, resolution=FMAX_RESOLUTION_MHZ,
        min_mhz=FMAX_CLOCK_SPAN_MHZ[0], max_mhz=FMAX_CLOCK_SPAN_MHZ[1]))
    fmax_seconds = time.perf_counter() - started
    families = run.result["families"]
    finite = [f for f in families if f["fmax_mhz"] is not None
              and not f["capped"]]
    assert len(finite) == len(families), \
        "every kernel x form x lanes family must bracket on the full grid"

    # stepping the whole span at the same resolution, per family
    span = FMAX_CLOCK_SPAN_MHZ[1] - FMAX_CLOCK_SPAN_MHZ[0]
    stepped_points = int(span / FMAX_RESOLUTION_MHZ) * len(families)
    for fam in finite:
        lo, hi = fam["bracket_mhz"]
        assert hi - lo <= FMAX_RESOLUTION_MHZ
        probe = DesignSpace(kernel=fam["kernel"], grid=(24, 24, 24),
                            iterations=10, lanes=[fam["lanes"]],
                            forms=(fam["form"],), clocks_mhz=(lo, hi))
        by_clock = {e.point.resolved_clock_mhz: e.report
                    for e in engine.explore(probe).entries}
        assert by_clock[lo].feasible, fam
        assert not by_clock[hi].feasible, fam

    payload["fmax"] = {
        "resolution_mhz": FMAX_RESOLUTION_MHZ,
        "families": len(families),
        "probes": run.evaluated,
        "probes_per_family": run.evaluated / len(families),
        "stepped_axis_points": stepped_points,
        "probe_reduction": stepped_points / run.evaluated,
        "seconds": fmax_seconds,
        "brackets_verified": len(finite),
    }
    assert run.evaluated < stepped_points / 10, payload["fmax"]

    (results_dir / "BENCH_dse.json").write_text(
        json.dumps(payload, indent=2) + "\n")
