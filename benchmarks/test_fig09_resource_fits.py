"""Experiment E1 — Figure 9: per-instruction resource cost expressions.

The paper derives the divider's ALUT cost expression (a quadratic trend
line, ``x^2 + 3.7x - 10.6``) from three synthesis data points (18, 32 and
64 bits) and validates it by interpolating 24 bits: the estimate of 654
ALUTs compares with an actual usage of 652.  The multiplier shows
piece-wise-linear ALUT glue and a step-wise DSP-block count.

This benchmark re-runs that calibration flow on the synthetic synthesiser
(the stand-in for Quartus), regenerates the figure's series, and checks:

* the fitted divider polynomial is quadratic and interpolates an unseen
  width to within a couple of per cent (the paper's 654 vs 652 is 0.3%);
* multiplier DSP usage steps at the 18-bit tile boundaries (1 DSP at 18
  bits up to 8 DSPs at 64 bits);
* multiplier ALUT glue stays piece-wise-linear (far below the divider).
"""

import pytest

from repro.cost import calibrate_device, fit_polynomial
from repro.ir import ScalarType
from repro.substrate import MAIA_STRATIX_V_GSD8, SyntheticSynthesizer

from .conftest import format_table

CALIBRATION_WIDTHS = (18, 32, 64)
INTERPOLATION_WIDTH = 24
SWEEP_WIDTHS = (8, 16, 18, 24, 32, 40, 48, 56, 64)


@pytest.fixture(scope="module")
def synthesizer():
    return SyntheticSynthesizer(MAIA_STRATIX_V_GSD8)


def _calibrate(synthesizer):
    dataset = synthesizer.characterize(opcodes=["add", "mul", "div"], widths=list(CALIBRATION_WIDTHS))
    return calibrate_device(dataset, dsp_input_width=MAIA_STRATIX_V_GSD8.dsp_input_width)


def test_fig09_divider_quadratic_fit(benchmark, synthesizer, write_result):
    """Fit the divider trend line from three points and interpolate 24 bits."""
    db = benchmark(_calibrate, synthesizer)

    # the fitted expression reproduces the paper's headline check
    estimated = db.lookup("div", INTERPOLATION_WIDTH).alut
    actual = synthesizer.synthesize_operator("div", ScalarType.uint(INTERPOLATION_WIDTH)).alut
    error = abs(estimated - actual) / actual
    assert error < 0.03, f"divider interpolation error {error:.1%} exceeds 3%"
    assert estimated == pytest.approx(654, rel=0.08)

    # and it is genuinely quadratic: refitting the raw points with degree 2
    # gives a positive leading coefficient of the order of 1 ALUT/bit^2
    points = [
        (w, synthesizer.synthesize_operator("div", ScalarType.uint(w)).alut)
        for w in CALIBRATION_WIDTHS
    ]
    poly = fit_polynomial(points, degree=2)
    assert 0.5 < poly.coefficients[2] < 1.5

    rows = []
    for width in SWEEP_WIDTHS:
        est = db.lookup("div", width).alut
        act = synthesizer.synthesize_operator("div", ScalarType.uint(width)).alut
        rows.append([width, round(est, 1), act, f"{abs(est - act) / act * 100:.2f}%"])
    write_result(
        "fig09_divider_alut",
        format_table(
            ["bit-width", "estimated ALUTs", "actual ALUTs", "error"],
            rows,
            title="Figure 9 (divider): fitted quadratic vs synthesiser ground truth "
                  f"(calibrated at {CALIBRATION_WIDTHS})",
        ),
    )


def test_fig09_multiplier_dsp_steps(benchmark, synthesizer, write_result):
    """Multiplier DSP usage steps at tile boundaries; ALUT glue stays small."""
    db = benchmark(_calibrate, synthesizer)

    rows = []
    for width in SWEEP_WIDTHS:
        usage_est = db.lookup("mul", width)
        usage_act = synthesizer.synthesize_operator("mul", ScalarType.uint(width))
        rows.append([width, round(usage_est.alut, 1), usage_act.alut,
                     round(usage_est.dsp, 1), usage_act.dsp])
    write_result(
        "fig09_multiplier",
        format_table(
            ["bit-width", "est ALUTs", "act ALUTs", "est DSPs", "act DSPs"],
            rows,
            title="Figure 9 (multiplier): piece-wise-linear ALUT glue and DSP steps",
        ),
    )

    # step behaviour with discontinuities at the DSP input width
    assert db.lookup("mul", 18).dsp == pytest.approx(1, abs=0.3)
    assert db.lookup("mul", 32).dsp == pytest.approx(2, abs=0.5)
    assert db.lookup("mul", 64).dsp == pytest.approx(8, abs=1.0)
    assert db.lookup("mul", 36).dsp < db.lookup("mul", 37).dsp  # a discontinuity

    # the multiplier's ALUT glue is orders of magnitude below the divider's
    assert db.lookup("mul", 64).alut < db.lookup("div", 64).alut / 20


def test_fig09_divider_vs_multiplier_series(benchmark, synthesizer, write_result):
    """Regenerate the full Figure-9 series (both operators, all widths)."""
    db = benchmark(_calibrate, synthesizer)
    rows = [
        [w, round(db.lookup("div", w).alut, 1), round(db.lookup("mul", w).alut, 1),
         round(db.lookup("mul", w).dsp, 1)]
        for w in SWEEP_WIDTHS
    ]
    write_result(
        "fig09_series",
        format_table(
            ["bit-width", "div ALUTs", "mul ALUTs", "mul DSPs"],
            rows,
            title="Figure 9: cost-expression series for unsigned integer div/mul (Stratix-V)",
        ),
    )
    div = {w: row[1] for w, row in zip(SWEEP_WIDTHS, rows)}
    mul = {w: row[2] for w, row in zip(SWEEP_WIDTHS, rows)}
    width_ratio = 64 / 18
    # the divider curve grows super-linearly (quadratic trend line) ...
    assert div[64] / div[18] > width_ratio ** 1.5
    # ... while the multiplier's ALUT glue is piece-wise linear: the midpoint
    # of the 18..64 segment family lies close to the straight line between the
    # endpoints, and the glue stays tiny compared with the divider
    line_mid = mul[18] + (mul[64] - mul[18]) * (40 - 18) / (64 - 18)
    assert mul[40] == pytest.approx(line_mid, rel=0.3, abs=8)
    assert mul[64] < div[64] / 20
