"""Cross-validation agreement benchmark -> BENCH_validate.json.

Experiment: the Table-II role of the substrate — drive the golden grid
through both the analytic estimator and the cycle-accurate simulators and
record how well (and how fast) they agree.  The paper reports estimate-
vs-measured cycle errors of 0-13% (most below ~7%); the reproduction's
device-side legs agree far tighter because both sides share the Table-I
parameter extraction, so the recorded figures gate against *drift*: a
change that opens a gap between the cost model and the simulators shows
up here (and in the validation goldens) before it ships.
"""

from __future__ import annotations

import json
import time

from repro.suite import golden_config
from repro.validate import validate_suite

#: the paper's own worst estimate-vs-measured error band (Table II)
PAPER_MAX_RELATIVE_ERROR = 0.13


def test_validation_agreement_artifact(benchmark, results_dir):
    """Record golden-grid agreement and validation throughput."""
    started = time.perf_counter()
    run = benchmark.pedantic(
        lambda: validate_suite(golden_config()), rounds=1, iterations=1
    )
    wall = time.perf_counter() - started

    totals = run.report.totals
    assert run.ok, f"golden-grid cross-validation disagrees: {totals}"
    # every point beats the paper's own accuracy band with a wide margin
    assert totals["max_seconds_relative_error"] <= PAPER_MAX_RELATIVE_ERROR
    # the simulator's documented invariant, at its strictest reading
    for records in run.records.values():
        for record in records:
            assert record.cycle_gap is not None
            assert record.cycle_gap <= record.pipeline_depth

    payload = {
        "config": run.report.payload["config"],
        "validation": run.report.validation,
        "totals": totals,
        "per_kernel": {
            name: {
                "points": len(records),
                "max_seconds_relative_error": max(
                    r.seconds_relative_error for r in records
                ),
                "max_cycle_gap": max(r.cycle_gap or 0 for r in records),
                "pipeline_depth": records[0].pipeline_depth,
                "worst_memory_leg": max(
                    (leg.relative_error for r in records for leg in r.legs),
                    default=0.0,
                ),
            }
            for name, records in run.records.items()
        },
        "wall_seconds": wall,
        "points_per_second": totals["points"] / wall if wall > 0 else 0.0,
        "paper_max_relative_error": PAPER_MAX_RELATIVE_ERROR,
    }
    (results_dir / "BENCH_validate.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
