"""Experiment E3 — Figure 15: evaluating SOR lane variants with the cost model.

The paper sweeps the number of SOR kernel pipelines (lanes) and plots, for
each variant, the percentage utilisation of every resource, the host and
device-DRAM bandwidth demands, and the throughput (EWGT).  Three walls
structure the figure:

* a **host communication wall** around 4 lanes when the data crosses the
  PCIe link every kernel instance (form A);
* a **computation wall** around 6 lanes, where the device runs out of
  resources;
* a **DRAM communication wall** around 16 lanes when the data is staged in
  device global memory (form B).

The device used for the sweep is a small reference target (documented in
DESIGN.md) sized so that the walls appear at the paper's lane counts; the
paper's own figure likewise expresses utilisation relative to an
unspecified resource budget.
"""

import pytest

from repro.compiler import CompilationOptions, TybecCompiler
from repro.cost.throughput import LimitingFactor, estimate_throughput
from repro.explore import exhaustive_search, generate_lane_variants
from repro.kernels import SORKernel
from repro.models import MemoryExecutionForm
from repro.substrate import FPGADevice

from .conftest import format_table

#: reference target for the sweep: sized so the computation wall falls at
#: ~6 lanes, the host wall at ~4 and the DRAM wall at ~16 (see DESIGN.md)
FIG15_DEVICE = FPGADevice(
    name="fig15-reference-device",
    family="stratix-v",
    vendor="altera",
    aluts=4_200,
    registers=9_000,
    bram_bits=2_300_000,
    dsps=32,
    fmax_mhz=150.0,
    dram_bytes=2 << 30,
    dram_peak_gbps=43.2,
    host_peak_gbps=5.4,
    pcie_lanes=8,
    pcie_gen=2,
)

GRID = (96, 96, 96)
LANE_COUNTS = [1, 2, 3, 4, 6, 8, 12, 16]
ITERATIONS = 10


@pytest.fixture(scope="module")
def compiler():
    c = TybecCompiler(CompilationOptions(device=FIG15_DEVICE, form=MemoryExecutionForm.B))
    _ = c.cost_db, c.dram_bandwidth, c.host_bandwidth
    return c


@pytest.fixture(scope="module")
def variants():
    return generate_lane_variants(SORKernel(), grid=GRID, iterations=ITERATIONS,
                                  lane_counts=LANE_COUNTS)


def _sweep(compiler, variants):
    return exhaustive_search(compiler, variants)


def test_fig15_variant_sweep(benchmark, compiler, variants, write_result):
    result = benchmark.pedantic(_sweep, args=(compiler, variants), rounds=1, iterations=1)

    # form-A estimates for the same variants (host transfer every instance)
    ewgt_form_a = {}
    for record in variants:
        variant = compiler.analyze(record.module)
        params, _ = compiler.extract_parameters(variant, record.workload)
        ewgt_form_a[record.lanes] = estimate_throughput(params, MemoryExecutionForm.A).ewgt

    rows = []
    for row in result.summary_rows():
        lanes = row["lanes"]
        rows.append([
            lanes,
            round(row["alut_pct"], 1), round(row["reg_pct"], 1),
            round(row["bram_pct"], 1), round(row["dsp_pct"], 1),
            round(ewgt_form_a[lanes], 1), round(row["ewgt_per_s"], 1),
            row["limiting_factor"], "yes" if row["feasible"] else "NO",
        ])
    write_result(
        "fig15_variant_sweep",
        format_table(
            ["lanes", "ALUT%", "REG%", "BRAM%", "DSP%",
             "EWGT/s (form A)", "EWGT/s (form B)", "limiting (B)", "fits"],
            rows,
            title=f"Figure 15: SOR lane-variant sweep on {FIG15_DEVICE.name} "
                  f"(grid {GRID}, {ITERATIONS} kernel iterations)",
        ),
    )

    reports = result.reports

    # --- resource utilisation grows linearly with lanes -----------------------
    util = {l: reports[l].utilization["alut"] for l in LANE_COUNTS}
    assert util[4] == pytest.approx(4 * util[1], rel=0.15)

    # --- computation wall around 6 lanes --------------------------------------
    feasible = [l for l in LANE_COUNTS if reports[l].feasibility.fits_resources]
    assert max(feasible) in (4, 6, 8)
    assert not reports[12].feasibility.fits_resources
    assert not reports[16].feasibility.fits_resources

    # --- host communication wall around 4 lanes (form A) ------------------------
    assert ewgt_form_a[2] > ewgt_form_a[1] * 1.3          # still scaling early
    assert ewgt_form_a[16] / ewgt_form_a[4] < 1.5          # saturated past the wall
    assert ewgt_form_a[16] / ewgt_form_a[8] < 1.15

    # --- DRAM communication wall only at much higher lane counts (form B) -------
    ewgt_form_b = {l: reports[l].throughput.ewgt for l in LANE_COUNTS}
    assert ewgt_form_b[8] > ewgt_form_b[4] * 1.4           # form B still scales at 8
    assert ewgt_form_b[16] / ewgt_form_b[12] < 1.25        # ... and saturates by ~16
    assert reports[16].limiting_factor in (
        LimitingFactor.DRAM_BANDWIDTH, LimitingFactor.COMPUTE
    )
    # the wall moves out by roughly the host:DRAM bandwidth ratio
    assert all(ewgt_form_b[l] >= ewgt_form_a[l] * 0.99 for l in LANE_COUNTS)

    # --- the estimator remains fast across the whole sweep -----------------------
    assert result.estimation_seconds < 2.0
