"""Tracing overhead on the warm full-grid sweep -> BENCH_obs.json.

The tracer sits on the hottest seams of the system — every pipeline
point, cache access, and backend batch opens a span when a tracer is
installed.  Span exit only appends a dict to an in-memory list (JSON
serialization is deferred to ``flush``), so a traced sweep must stay
within 5% of a clean one.  Both runs must also produce byte-identical
canonical reports: spans are a side channel, never a payload ingredient.
"""

from __future__ import annotations

import json

from repro.compiler.pipeline import clear_calibration_cache
from repro.obs.trace import Tracer, install_tracer, uninstall_tracer
from repro.suite import WorkloadSuite

from benchmarks.test_suite_throughput import FULL_GRID_CONFIG

#: the gate: an active tracer may slow the warm full-grid sweep by at
#: most this factor (plus a small absolute slack for CI timer noise on
#: sub-second sweeps)
MAX_OVERHEAD_RATIO = 1.05
ABSOLUTE_SLACK_SECONDS = 0.1


def _best_of(runner, repeats: int = 3):
    best = None
    for _ in range(repeats):
        clear_calibration_cache()
        run = runner()
        if best is None or run.wall_seconds < best.wall_seconds:
            best = run
    return best


def test_tracing_overhead_is_negligible(results_dir, monkeypatch, tmp_path):
    """Record the traced-vs-clean warm-sweep delta in BENCH_obs.json."""
    monkeypatch.setenv("TYBEC_CACHE_DIR", str(tmp_path / "obs-bench-cache"))
    suite = WorkloadSuite(FULL_GRID_CONFIG)
    _best_of(suite.run, repeats=1)   # populate the persistent store

    clean = _best_of(suite.run)

    spans = 0

    def traced_run():
        nonlocal spans
        tracer = install_tracer(Tracer(tmp_path / "obs-bench.ndjson"))
        try:
            return suite.run()
        finally:
            uninstall_tracer()
            spans = max(spans, tracer.spans_emitted)

    traced = _best_of(traced_run)
    clear_calibration_cache()

    # tracing never changes a byte of the canonical report
    assert traced.report.to_json() == clean.report.to_json()
    # the sweep was actually traced (the timing is non-vacuous)
    assert spans > 0

    overhead = traced.wall_seconds / clean.wall_seconds
    payload = {
        "points": clean.evaluated,
        "config": FULL_GRID_CONFIG.as_dict(),
        "clean_wall_seconds": clean.wall_seconds,
        "traced_wall_seconds": traced.wall_seconds,
        "overhead_ratio": overhead,
        "max_overhead_ratio": MAX_OVERHEAD_RATIO,
        "spans": spans,
        "reports_identical": True,
    }
    (results_dir / "BENCH_obs.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    assert clean.evaluated >= 300
    assert traced.wall_seconds <= (clean.wall_seconds * MAX_OVERHEAD_RATIO
                                   + ABSOLUTE_SLACK_SECONDS), payload
