"""Exploration-service load benchmark -> BENCH_service.json.

Boots the service in-process on an ephemeral port, drives it with a
threaded load generator over real HTTP, and records the latency
distribution as a CI artifact:

* **cold** — the first request on a fresh service pays device
  calibration and family analysis (what every CLI invocation used to pay
  on every run).
* **warm** — subsequent *distinct* sweeps (different iteration counts,
  so nothing replays from the results cache) reuse the shared
  calibration/family/session caches and pay only per-point work.
* **replay** — a byte-identical request served from the coalescer's
  results cache: the latency floor.
* **sustained** — 8 concurrent clients hammering a small pool of
  configurations; p50/p99 latency and requests/second, plus the
  coalescing counters that prove identical work ran once.

The warm-vs-cold ratio is the service's reason to exist: one process
owns the warm state, every client shares it.
"""

from __future__ import annotations

import json
import statistics
import threading
import time

from repro.compiler.lanescale import clear_family_caches
from repro.compiler.pipeline import clear_calibration_cache
from repro.service import ExplorationService, ServiceClient, ServiceServer

#: the benchmark grid: one kernel, tiny grid — per-request work is small
#: so the measured numbers are service overhead + cache behaviour, not
#: sweep size
BASE_SPEC = {"tiny": True, "kernels": ["sor"], "max_lanes": 4}

LOAD_THREADS = 8
LOAD_REQUESTS_PER_THREAD = 12

#: cold pays calibration + family analysis; warm must visibly not
MIN_WARM_SPEEDUP = 1.5


def _spec(iterations: int) -> dict:
    return {**BASE_SPEC, "iterations": iterations}


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _timed_suite(client: ServiceClient, spec: dict) -> tuple[float, str]:
    started = time.perf_counter()
    response = client.suite(spec)
    return time.perf_counter() - started, response.role


def test_service_load_artifact(results_dir, tmp_path, monkeypatch):
    # the cold measurement must actually be cold: earlier benchmarks in
    # the same pytest process leave the process-wide calibration/family
    # caches and the shared persistent store warm
    monkeypatch.setenv("TYBEC_CACHE_DIR", str(tmp_path / "service-cache"))
    clear_calibration_cache()
    clear_family_caches()
    server = ServiceServer(("127.0.0.1", 0),
                           ExplorationService(max_concurrency=4))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(port=server.port)
    try:
        # -- cold: first request on a fresh service ---------------------
        cold_seconds, cold_role = _timed_suite(client, _spec(10))
        assert cold_role == "leader"

        # -- warm: distinct sweeps over the now-warm caches -------------
        warm_samples = []
        for iterations in range(11, 17):
            seconds, role = _timed_suite(client, _spec(iterations))
            assert role == "leader", "distinct configs must not coalesce"
            warm_samples.append(seconds)
        warm_seconds = statistics.median(warm_samples)

        # -- replay: identical request, served from the results cache ---
        replay_seconds, replay_role = _timed_suite(client, _spec(10))
        assert replay_role == "replay"

        # -- sustained concurrent load ----------------------------------
        pool = [_spec(i) for i in (10, 11, 12, 13)]
        latencies: list[float] = []
        roles: list[str] = []
        errors: list[BaseException] = []
        lock = threading.Lock()
        barrier = threading.Barrier(LOAD_THREADS)

        def load_worker(tid: int) -> None:
            worker_client = ServiceClient(port=server.port)
            try:
                barrier.wait()
                for i in range(LOAD_REQUESTS_PER_THREAD):
                    seconds, role = _timed_suite(
                        worker_client, pool[(tid + i) % len(pool)])
                    with lock:
                        latencies.append(seconds)
                        roles.append(role)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                with lock:
                    errors.append(exc)

        workers = [threading.Thread(target=load_worker, args=(tid,))
                   for tid in range(LOAD_THREADS)]
        load_started = time.perf_counter()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        load_wall = time.perf_counter() - load_started
        assert not errors, f"load generator saw failures: {errors[:3]}"
        total = LOAD_THREADS * LOAD_REQUESTS_PER_THREAD
        assert len(latencies) == total

        metrics = client.metrics()
        coalesced = (metrics["coalesce"]["joined"]
                     + metrics["coalesce"]["replayed"])
        # the pool holds 4 distinct configs (all already computed during
        # the warm phase for 3 of them): nearly every load request must
        # ride an existing computation instead of starting a sweep
        assert coalesced >= total - len(pool)
        assert metrics["queue"]["depth"] == 0

        payload = {
            "grid": BASE_SPEC,
            "cold": {"seconds": cold_seconds},
            "warm": {
                "seconds_median": warm_seconds,
                "samples": warm_samples,
                "speedup_vs_cold": cold_seconds / warm_seconds,
            },
            "replay": {"seconds": replay_seconds},
            "sustained": {
                "threads": LOAD_THREADS,
                "requests": total,
                "wall_seconds": load_wall,
                "requests_per_second": total / load_wall,
                "p50_seconds": _percentile(latencies, 0.50),
                "p99_seconds": _percentile(latencies, 0.99),
                "max_seconds": max(latencies),
                "roles": {role: roles.count(role) for role in set(roles)},
            },
            "metrics": {
                "sweeps": metrics["sweeps"],
                "coalesce": {k: v for k, v in metrics["coalesce"].items()
                             if k != "results_cache"},
            },
        }
        (results_dir / "BENCH_service.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")

        assert cold_seconds / warm_seconds >= MIN_WARM_SPEEDUP, (
            f"warm requests ({warm_seconds:.3f}s) must beat the cold start "
            f"({cold_seconds:.3f}s) by at least {MIN_WARM_SPEEDUP}x — the "
            f"shared warm caches are the service's reason to exist")
        assert payload["sustained"]["p99_seconds"] < cold_seconds * 10, \
            "p99 under load blew past any per-request cost we can explain"
    finally:
        server.shutdown()
        server.server_close()
