"""RTL flow throughput benchmark -> BENCH_flows.json.

Times the suite-scale RTL verification — every (kernel, lanes) family of
the golden grid elaborated from its emitted Verilog text and
cycle-simulated against the kernel Python reference — and records the
points/s plus the per-stage breakdown (emit, elaborate, reference,
simulate, verify) as a CI artifact, so regressions in the pure-Python
backend's speed are visible run over run.
"""

from __future__ import annotations

import json

from repro.cost.cache import redirected_cache_dir
from repro.flows import run_flow_suite
from repro.kernels import kernel_names
from repro.suite.golden import golden_config

#: conservative CI gates; recorded throughput lives in the artifact
MIN_ITEMS_PER_SECOND = 100.0
MIN_FAMILIES_PER_SECOND = 1.0


def test_flow_suite_throughput_artifact(results_dir, tmp_path):
    """Record the golden-grid RTL verification rates in BENCH_flows.json."""
    with redirected_cache_dir(tmp_path / "flow-bench-cache"):
        run = run_flow_suite(golden_config())
    assert run.ok, run.failures
    assert run.families == 3 * len(kernel_names())

    payload = {
        "kernels": kernel_names(),
        "grid": {
            "points": run.sweep.evaluated,
            "families": run.families,
            "simulated_items": run.simulated_items,
        },
        "throughput": {
            "flow_seconds": run.flow_seconds,
            "families_per_second": run.families_per_second,
            "items_per_second": run.items_per_second,
        },
        "stage_seconds": run.stage_seconds,
        "totals": run.report.totals,
    }
    (results_dir / "BENCH_flows.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    assert run.items_per_second > MIN_ITEMS_PER_SECOND, payload
    assert run.families_per_second > MIN_FAMILIES_PER_SECOND, payload
    # the breakdown covers the whole pipeline of every flow
    assert {"emit", "elaborate", "reference", "simulate", "verify"} <= set(
        run.stage_seconds)


def test_flow_cache_serves_repeat_runs(tmp_path):
    """A second identical suite-scale run is served from the flow cache."""
    with redirected_cache_dir(tmp_path / "flow-bench-cache"):
        cold = run_flow_suite(golden_config(kernels=("nw",)))
        warm = run_flow_suite(golden_config(kernels=("nw",)))
    assert warm.report.to_json() == cold.report.to_json()
    # cache-served flows skip simulation entirely
    assert warm.flow_seconds < cold.flow_seconds
    assert not warm.stage_seconds


def test_flow_benchmark(benchmark):
    """pytest-benchmark timing of one uncached single-kernel flow pass."""
    from repro.flows import FlowSettings, RTLSimFlow
    from repro.kernels import get_kernel
    from repro.suite.runner import tiny_grid

    kernel = get_kernel("nw")
    module = kernel.build_module(lanes=1, grid=tiny_grid(kernel.default_grid))

    def _run():
        flow = RTLSimFlow(module, FlowSettings(n_items=64, use_cache=False))
        return flow.run().payload["ok"]

    assert benchmark(_run) is True
