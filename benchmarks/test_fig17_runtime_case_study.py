"""Experiment E5 — Figure 17: SOR runtime, CPU vs MaxJ-HLS vs TyTra.

The paper's case study runs the SOR kernel for 1000 iterations at grid
sizes from 24 to 192 elements per dimension and compares a CPU baseline, a
straightforward Maxeler (MaxJ) port and the TyTra-generated 4-lane
variant, normalising runtimes against the CPU.  Key observations:

* at the smallest grid the FPGA overheads dominate: ``fpga-tytra`` is no
  faster than the CPU and can be slower than ``fpga-maxJ``;
* from mid-sized grids on, ``fpga-tytra`` consistently wins — up to 3.9x
  over ``fpga-maxJ`` and 2.6x over the CPU;
* the straightforward HLS port remains *slower than the CPU* at the grid
  size weather models actually use (~100 per dimension), while the TyTra
  variant is ~2.75x faster there.
"""

import pytest

from repro.explore import CaseStudyConfig, run_sor_case_study

from .conftest import format_table

GRID_SIDES = (24, 48, 96, 144, 192)
ITERATIONS = 1000


@pytest.fixture(scope="module")
def case_study_points():
    return run_sor_case_study(GRID_SIDES, CaseStudyConfig(iterations=ITERATIONS, lanes=4))


def test_fig17_runtime_case_study(benchmark, write_result):
    points = benchmark.pedantic(
        run_sor_case_study,
        args=(GRID_SIDES, CaseStudyConfig(iterations=ITERATIONS, lanes=4)),
        rounds=1, iterations=1,
    )
    by_side = {p.grid_side: p for p in points}

    rows = []
    for side in GRID_SIDES:
        p = by_side[side]
        norm = p.runtime_normalised
        rows.append([
            side,
            round(p.cpu_seconds, 3), round(p.maxj_seconds, 3), round(p.tytra_seconds, 3),
            round(norm["fpga-maxJ"], 2), round(norm["fpga-tytra"], 2),
            f"{p.tytra_speedup_vs_cpu:.2f}x", f"{p.tytra_speedup_vs_maxj:.2f}x",
        ])
    write_result(
        "fig17_runtime",
        format_table(
            ["grid", "cpu (s)", "maxJ (s)", "tytra (s)",
             "maxJ/cpu", "tytra/cpu", "tytra speedup vs cpu", "vs maxJ"],
            rows,
            title=f"Figure 17: SOR runtime for {ITERATIONS} iterations, normalised to the CPU",
        ),
    )

    # -- smallest grid: overheads dominate; tytra is not the winner ------------
    assert by_side[24].tytra_speedup_vs_cpu < 1.0
    assert by_side[24].tytra_seconds > by_side[24].maxj_seconds

    # -- the typical weather-model grid (~100/dim): maxJ slower than CPU,
    #    tytra clearly faster (paper: 2.75x)
    assert by_side[96].maxj_seconds > by_side[96].cpu_seconds
    assert 1.8 < by_side[96].tytra_speedup_vs_cpu < 4.5

    # -- large grids: tytra wins over both, by factors in the paper's range ------
    big = by_side[192]
    assert 2.0 < big.tytra_speedup_vs_cpu < 5.0      # paper: up to 2.6x
    assert 2.5 < big.tytra_speedup_vs_maxj < 6.0     # paper: up to 3.9x
    assert big.maxj_seconds > big.cpu_seconds        # the HLS port alone never catches the CPU

    # -- monotone trend: the FPGA advantage grows with the grid -----------------
    speedups = [by_side[s].tytra_speedup_vs_cpu for s in GRID_SIDES]
    assert all(b >= a for a, b in zip(speedups, speedups[1:]))


def test_fig17_relative_results_hold_across_iteration_counts(case_study_points):
    """The paper notes the relative results hold across nmaxp values."""
    few = run_sor_case_study((96,), CaseStudyConfig(iterations=100, lanes=4))[0]
    many = [p for p in case_study_points if p.grid_side == 96][0]
    assert few.tytra_speedup_vs_maxj == pytest.approx(many.tytra_speedup_vs_maxj, rel=0.15)
    assert few.tytra_speedup_vs_cpu == pytest.approx(many.tytra_speedup_vs_cpu, rel=0.25)
