"""Experiment E6 — Figure 18: increase over idle energy, normalised to the CPU.

Using a wall power meter, the paper measures the increase over idle power
for the CPU-only and CPU+FPGA solutions and reports the delta energy for
the same runs as Figure 17.  FPGAs overtake the CPU very quickly as the
grid grows; the TyTra variant reaches up to 11x better energy than the CPU
and about 2.9x better than the MaxJ baseline.

The reproduction uses the node power model (idle/active CPU, FPGA static +
resource-dependent dynamic power); the absolute joules are model outputs
but the orderings and the rough factors are asserted.
"""

import pytest

from repro.explore import CaseStudyConfig, run_sor_case_study

from .conftest import format_table

GRID_SIDES = (24, 48, 96, 144, 192)
ITERATIONS = 1000


def test_fig18_energy_case_study(benchmark, write_result):
    points = benchmark.pedantic(
        run_sor_case_study,
        args=(GRID_SIDES, CaseStudyConfig(iterations=ITERATIONS, lanes=4)),
        rounds=1, iterations=1,
    )
    by_side = {p.grid_side: p for p in points}

    rows = []
    for side in GRID_SIDES:
        p = by_side[side]
        norm = p.energy_normalised
        rows.append([
            side,
            round(p.cpu_delta_energy_j, 1), round(p.maxj_delta_energy_j, 1),
            round(p.tytra_delta_energy_j, 1),
            round(norm["fpga-maxJ"], 3), round(norm["fpga-tytra"], 3),
            f"{p.tytra_energy_gain_vs_cpu:.2f}x", f"{p.tytra_energy_gain_vs_maxj:.2f}x",
        ])
    write_result(
        "fig18_energy",
        format_table(
            ["grid", "cpu (J)", "maxJ (J)", "tytra (J)",
             "maxJ/cpu", "tytra/cpu", "tytra gain vs cpu", "vs maxJ"],
            rows,
            title=f"Figure 18: delta energy for {ITERATIONS} SOR iterations, normalised to the CPU",
        ),
    )

    # at the smallest grid the FPGA solutions are not yet ahead
    assert by_side[24].energy_normalised["fpga-tytra"] > 0.5

    # FPGAs very quickly overtake the CPU as the grid grows
    assert by_side[48].energy_normalised["fpga-maxJ"] < 1.0
    assert by_side[48].energy_normalised["fpga-tytra"] < 1.0

    # at large grids: large energy gains, tytra ahead of maxJ
    big = by_side[192]
    assert big.tytra_energy_gain_vs_cpu > 5.0        # paper: up to 11x
    assert big.tytra_energy_gain_vs_maxj > 2.0       # paper: up to 2.9x
    assert big.energy_normalised["fpga-tytra"] < big.energy_normalised["fpga-maxJ"] < 1.0

    # the energy advantage grows monotonically with grid size
    gains = [by_side[s].tytra_energy_gain_vs_cpu for s in GRID_SIDES]
    assert all(b >= a for a, b in zip(gains, gains[1:]))
