"""Experiment E10 — ablations of the cost model's design choices.

Three ablations quantify the modelling decisions the paper calls out:

1. **Empirical bandwidth model vs a flat peak-bandwidth assumption** —
   §V-C argues that sustained bandwidth must be modelled as a function of
   size and contiguity; the ablation measures how far a flat model
   mis-predicts the throughput of bandwidth-bound variants.

2. **Memory-execution form awareness** — Figure 15's observation that the
   communication wall moves from ~4 lanes (form A) to ~16 lanes (form B):
   costing a form-B program with the form-A expression grossly
   underestimates wide variants.

3. **Calibration sparsity** — Figure 9 fits the quadratic divider
   expression from only three synthesis points; the ablation verifies the
   sparse fit loses almost nothing against a dense characterisation.
"""

import pytest

from repro.compiler import CompilationOptions, TybecCompiler
from repro.cost import SustainedBandwidthModel, calibrate_device, estimate_throughput
from repro.ir import ScalarType
from repro.kernels import SORKernel
from repro.models import MemoryExecutionForm
from repro.models.streaming import PatternKind
from repro.substrate import MAIA_STRATIX_V_GSD8, SyntheticSynthesizer

from .conftest import format_table

GRID = (96, 96, 96)
ITERATIONS = 1000


@pytest.fixture(scope="module")
def sor_params(maia_compiler):
    """EKIT parameters of a wide (8-lane) SOR variant on the Maia board."""
    kernel = SORKernel()
    module = kernel.build_module(lanes=8, grid=GRID)
    variant = maia_compiler.analyze(module)
    workload = kernel.workload(GRID, ITERATIONS)
    params, selection = maia_compiler.extract_parameters(variant, workload)
    return params, selection


def test_ablation_flat_bandwidth_model(benchmark, maia_compiler, write_result):
    """Ignoring size/contiguity scaling over-estimates strided-stream designs."""
    kernel = SORKernel()
    module = kernel.build_module(lanes=8, grid=GRID)
    workload = kernel.workload(GRID, ITERATIONS)
    variant = maia_compiler.analyze(module)

    def evaluate(pattern, dram_model):
        saved = maia_compiler.options.dram_bandwidth
        maia_compiler.options.dram_bandwidth = dram_model
        try:
            params, selection = maia_compiler.extract_parameters(variant, workload, pattern)
            return estimate_throughput(params, selection.form)
        finally:
            maia_compiler.options.dram_bandwidth = saved

    empirical = maia_compiler.dram_bandwidth
    flat = SustainedBandwidthModel.flat(peak_gbps=empirical.peak_gbps, efficiency=1.0)

    results = benchmark.pedantic(
        lambda: {
            ("contiguous", "empirical"): evaluate(PatternKind.CONTIGUOUS, empirical),
            ("contiguous", "flat"): evaluate(PatternKind.CONTIGUOUS, flat),
            ("strided", "empirical"): evaluate(PatternKind.STRIDED, empirical),
            ("strided", "flat"): evaluate(PatternKind.STRIDED, flat),
        },
        rounds=1, iterations=1,
    )

    rows = [
        [pattern, model, round(est.ewgt, 2), est.limiting_factor.value]
        for (pattern, model), est in results.items()
    ]
    write_result(
        "ablation_bandwidth_model",
        format_table(["access pattern", "bandwidth model", "EWGT/s", "limiting factor"],
                     rows, title="Ablation: empirical vs flat sustained-bandwidth model "
                                 "(8-lane SOR, 96^3)"),
    )

    # for contiguous streams the flat model is optimistic but in the ballpark
    ratio_contiguous = (results[("contiguous", "flat")].ewgt
                        / results[("contiguous", "empirical")].ewgt)
    assert 1.0 <= ratio_contiguous < 2.5
    # for strided streams ignoring contiguity mis-predicts by well over an
    # order of magnitude — the paper's two-orders-of-magnitude observation
    ratio_strided = (results[("strided", "flat")].ewgt
                     / results[("strided", "empirical")].ewgt)
    assert ratio_strided > 10


def test_ablation_memory_execution_form(benchmark, sor_params, write_result):
    """Using the form-A expression for a form-B program cripples wide variants."""
    params, selection = sor_params
    assert selection.form is MemoryExecutionForm.B

    def sweep():
        rows = []
        for lanes in (1, 2, 4, 8, 16):
            p = params.with_lanes(lanes)
            a = estimate_throughput(p, MemoryExecutionForm.A)
            b = estimate_throughput(p, MemoryExecutionForm.B)
            rows.append((lanes, a, b))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = [
        [lanes, round(a.ewgt, 2), round(b.ewgt, 2), round(b.ewgt / a.ewgt, 2),
         a.limiting_factor.value, b.limiting_factor.value]
        for lanes, a, b in rows
    ]
    write_result(
        "ablation_memory_execution_form",
        format_table(
            ["lanes", "EWGT form A", "EWGT form B", "B/A", "limiting (A)", "limiting (B)"],
            table,
            title="Ablation: costing the same variants with the form-A vs form-B expression",
        ),
    )

    by_lanes = {lanes: (a, b) for lanes, a, b in rows}
    # misusing form A underestimates the wide variant's throughput substantially
    assert by_lanes[16][1].ewgt / by_lanes[16][0].ewgt > 2.0
    # and mislabels the bottleneck as the host link
    assert by_lanes[16][0].limiting_factor.value == "host-bandwidth"
    assert by_lanes[16][1].limiting_factor.value != "host-bandwidth"
    # at a single lane the two expressions are much closer
    assert by_lanes[1][1].ewgt / by_lanes[1][0].ewgt < 1.6


def test_ablation_calibration_sparsity(benchmark, write_result):
    """Three calibration points are essentially as good as a dense sweep."""
    synthesizer = SyntheticSynthesizer(MAIA_STRATIX_V_GSD8)

    def calibrate_both():
        sparse = calibrate_device(synthesizer.characterize(opcodes=["div"], widths=[18, 32, 64]))
        dense = calibrate_device(
            synthesizer.characterize(opcodes=["div"], widths=[12, 16, 18, 24, 32, 40, 48, 56, 64])
        )
        return sparse, dense

    sparse, dense = benchmark.pedantic(calibrate_both, rounds=1, iterations=1)

    rows = []
    worst_gap = 0.0
    for width in (20, 24, 28, 36, 44, 52, 60):
        actual = synthesizer.synthesize_operator("div", ScalarType.uint(width)).alut
        est_sparse = sparse.lookup("div", width).alut
        est_dense = dense.lookup("div", width).alut
        err_sparse = abs(est_sparse - actual) / actual
        err_dense = abs(est_dense - actual) / actual
        worst_gap = max(worst_gap, err_sparse - err_dense)
        rows.append([width, actual, round(est_sparse, 1), f"{err_sparse * 100:.2f}%",
                     round(est_dense, 1), f"{err_dense * 100:.2f}%"])
        assert err_sparse < 0.06
    write_result(
        "ablation_calibration_sparsity",
        format_table(
            ["width", "actual ALUTs", "3-point fit", "error", "9-point fit", "error"],
            rows,
            title="Ablation: divider calibrated from 3 points (paper) vs a dense sweep",
        ),
    )
    # the sparse fit gives up at most a few percentage points of accuracy
    assert worst_gap < 0.05


def test_ablation_infeasible_variants_filtered(maia_compiler, write_result):
    """The resource estimate's role: rejecting variants that cannot fit.

    The paper notes resource/bandwidth estimates mainly confirm validity.
    On the large Maia device wide SOR variants fit; on the small reference
    device they are rejected — the same reports drive both decisions.
    """
    kernel = SORKernel()
    small = TybecCompiler(CompilationOptions(
        device=__import__("repro.substrate", fromlist=["SMALL_EDU_DEVICE"]).SMALL_EDU_DEVICE))
    rows = []
    for lanes in (1, 4, 16):
        module = kernel.build_module(lanes=lanes, grid=(16, 16, 16))
        workload = kernel.workload((16, 16, 16), 10)
        big_report = maia_compiler.cost(module, workload)
        small_report = small.cost(module, workload)
        rows.append([lanes, "yes" if big_report.feasible else "NO",
                     "yes" if small_report.feasible else "NO"])
    write_result(
        "ablation_feasibility_filter",
        format_table(["lanes", "fits Maia (Stratix-V)", "fits small device"], rows,
                     title="Feasibility filtering of SOR variants on two targets"),
    )
    assert rows[0][1] == "yes" and rows[2][1] == "yes"
    assert rows[2][2] == "NO"
