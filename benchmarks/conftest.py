"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(see DESIGN.md §4 for the experiment index).  Each benchmark

* times the central computation with ``pytest-benchmark`` (so
  ``pytest benchmarks/ --benchmark-only`` reports how long the cost model /
  simulators take),
* asserts the qualitative *shape* the paper reports (who wins, by roughly
  what factor, where the walls/crossovers are), and
* writes the regenerated rows/series to ``benchmarks/results/`` so they can
  be compared side by side with the paper (EXPERIMENTS.md).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.compiler import CompilationOptions, TybecCompiler
from repro.substrate import MAIA_STRATIX_V_GSD8, SMALL_EDU_DEVICE, VIRTEX7_ADM_PCIE_7V3

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def _isolated_disk_cache(tmp_path_factory):
    """Benchmarks measure compute, not the user's warm persistent cache."""
    from repro.cost.cache import redirected_cache_dir

    with redirected_cache_dir(tmp_path_factory.mktemp("tybec-cache")):
        yield


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_result(results_dir):
    """Write a regenerated table to benchmarks/results/<name>.txt."""

    def _write(name: str, text: str) -> Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text if text.endswith("\n") else text + "\n")
        return path

    return _write


@pytest.fixture(scope="session")
def maia_compiler() -> TybecCompiler:
    """A compiler targeting the case-study board, calibration pre-warmed."""
    compiler = TybecCompiler(CompilationOptions(device=MAIA_STRATIX_V_GSD8))
    _ = compiler.cost_db, compiler.dram_bandwidth, compiler.host_bandwidth
    return compiler


@pytest.fixture(scope="session")
def small_device_compiler() -> TybecCompiler:
    """A compiler targeting the small device used for the wall studies."""
    compiler = TybecCompiler(CompilationOptions(device=SMALL_EDU_DEVICE))
    _ = compiler.cost_db, compiler.dram_bandwidth, compiler.host_bandwidth
    return compiler


@pytest.fixture(scope="session")
def devices():
    return {
        "maia": MAIA_STRATIX_V_GSD8,
        "virtex7": VIRTEX7_ADM_PCIE_7V3,
        "small": SMALL_EDU_DEVICE,
    }


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Render a simple fixed-width text table."""
    widths = [max(len(str(h)), *(len(f"{row[i]:.4g}" if isinstance(row[i], float) else str(row[i]))
                                  for row in rows)) for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        cells = []
        for value, width in zip(row, widths):
            text = f"{value:.4g}" if isinstance(value, float) else str(value)
            cells.append(text.rjust(width))
        lines.append("  ".join(cells))
    return "\n".join(lines) + "\n"
