"""Warm-vs-cold suite benchmark: proves the persistent cache pays.

Runs the multi-device workload suite twice in *separate processes*
against one persistent cache directory:

* **cold** — the cache directory starts empty; the run pays device
  calibration (one per device) and one full analysis per design family,
  and persists both.
* **warm** — a fresh process with the populated cache; calibration and
  family analyses load from disk, so only the cheap per-point work
  (throughput, feasibility, report assembly) remains.

The script asserts the warm run is at least ``--min-speedup`` times
faster (the CI gate), checks the two reports are byte-identical, and
writes the stage-timing breakdown to ``--output`` so the artifact names
the guilty stage whenever the ratio regresses.

Usage (CI runs exactly this)::

    PYTHONPATH=src python benchmarks/warm_cold_suite.py \
        --output benchmarks/results/warm_cold_suite.json --min-speedup 3
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

#: calibration-heavy but point-light: three devices multiply the one-time
#: work the persistent cache elides, while the tiny grids keep the
#: irreducible per-point work small
MEASURE_SNIPPET = """
import json, sys, time
from repro.suite import SuiteConfig, WorkloadSuite
import dataclasses

config = dataclasses.replace(
    SuiteConfig.tiny(devices=("stratix-v", "virtex-7", "small")),
    max_lanes=8,
)
suite = WorkloadSuite(config)
run = suite.run()
json.dump({
    "wall_seconds": run.wall_seconds,
    "points": run.evaluated,
    "variants_per_second": run.variants_per_second,
    "stats": run.stats,
    "report_sha": __import__("hashlib").sha256(
        run.report.to_json().encode()).hexdigest(),
}, sys.stdout)
"""


def _measure(cache_dir: str, repo_root: Path) -> dict:
    env = dict(os.environ)
    env["TYBEC_CACHE_DIR"] = cache_dir
    src = str(repo_root / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", MEASURE_SNIPPET],
        env=env, capture_output=True, text=True, check=True,
    )
    return json.loads(out.stdout)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--output", type=Path, default=None,
                        help="write the cold/warm measurements as JSON")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="fail unless warm is this many times faster than cold")
    parser.add_argument("--repeats", type=int, default=2,
                        help="measurements per scenario (best is kept)")
    args = parser.parse_args(argv)

    repo_root = Path(__file__).resolve().parents[1]
    cache_dir = tempfile.mkdtemp(prefix="tybec-warm-cold-")
    try:
        shutil.rmtree(cache_dir, ignore_errors=True)
        cold = _measure(cache_dir, repo_root)   # first run populates the cache
        cold_best = cold
        warm_runs = [_measure(cache_dir, repo_root) for _ in range(args.repeats)]
        warm_best = min(warm_runs, key=lambda r: r["wall_seconds"])
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    speedup = cold_best["wall_seconds"] / warm_best["wall_seconds"]
    identical = cold_best["report_sha"] == warm_best["report_sha"]
    payload = {
        "points": cold_best["points"],
        "cold": cold_best,
        "warm": warm_best,
        "warm_speedup": speedup,
        "reports_identical": identical,
        "min_speedup_required": args.min_speedup,
    }
    if args.output:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"cold: {cold_best['wall_seconds'] * 1e3:8.1f} ms "
          f"({cold_best['points']} points)")
    print(f"warm: {warm_best['wall_seconds'] * 1e3:8.1f} ms "
          f"-> {speedup:.2f}x (required: >= {args.min_speedup:.1f}x)")
    for scenario in ("cold", "warm"):
        seconds = payload[scenario]["stats"].get("stage_seconds", {})
        breakdown = "  ".join(f"{k} {v * 1e3:.1f}ms"
                              for k, v in sorted(seconds.items(), key=lambda kv: -kv[1]))
        print(f"  {scenario} stages: {breakdown}")

    if not identical:
        print("FAIL: cold and warm reports differ", file=sys.stderr)
        return 1
    if speedup < args.min_speedup:
        print(f"FAIL: warm speedup {speedup:.2f}x below the "
              f"{args.min_speedup:.1f}x gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
